//! The event-driven SSD simulator.
//!
//! Requests from a block I/O trace flow through: host interface (queue
//! depth, protocol overhead, link bandwidth) → FTL (cached mapping table,
//! data cache) → flash back end (channel buses, plane busy times, GC and
//! wear-leveling background work). Timing uses per-resource availability
//! timelines, which is equivalent to a discrete-event simulation with
//! implicit FIFO queues per resource — the abstraction level of MQSim.

use crate::config::{CacheMode, FlashTechnology, SsdConfig};
use crate::flash::{pseudo_location, splitmix64, BackgroundOp, FlashArray};
use crate::lru::LruCache;
use crate::observe::{
    BottleneckReport, DeviceSample, DeviceSeries, TenantLanes, DEFAULT_SAMPLE_CAP,
    DEFAULT_SAMPLE_INTERVAL_NS,
};
use crate::power::{compute_energy, ActivityCounters};
use crate::report::{LatencyBuckets, LatencySummary, ReadBreakdown, SimReport, WriteBreakdown};
use iotrace::{OpKind, Trace};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Maximum pages a single host request may span (guards degenerate traces).
const MAX_PAGES_PER_REQUEST: u64 = 2048;

/// DRAM access cost for a whole page, derived per config at construction.
#[derive(Debug, Clone, Copy)]
struct Timing {
    read_ns: u64,
    program_ns: u64,
    erase_ns: u64,
    transfer_ns: u64,
    dram_page_ns: u64,
    dram_entry_ns: u64,
    protocol_ns: u64,
    link_bytes_per_ns: f64,
    suspend_program_ns: u64,
    /// SLC-mode cell timings for the hybrid cache tier (base SLC figures,
    /// independent of the capacity technology's tuned latencies).
    slc_read_ns: u64,
    slc_program_ns: u64,
    slc_erase_ns: u64,
}

impl Timing {
    fn from_config(cfg: &SsdConfig) -> Self {
        let dram_bytes_per_ns = f64::from(cfg.dram_data_rate_mts.max(200)) * 1e6 * 8.0 / 1e9;
        Timing {
            read_ns: cfg.read_latency_ns,
            program_ns: cfg.program_latency_ns,
            erase_ns: cfg.erase_latency_ns,
            transfer_ns: cfg.channel_transfer_ns(),
            dram_page_ns: (f64::from(cfg.page_size_bytes) / dram_bytes_per_ns) as u64 + 30,
            dram_entry_ns: 60,
            protocol_ns: cfg.protocol_overhead_ns(),
            link_bytes_per_ns: cfg.link_bandwidth_bps() / 1e9,
            suspend_program_ns: cfg.suspend_program_ns,
            slc_read_ns: FlashTechnology::Slc.base_read_ns(),
            slc_program_ns: FlashTechnology::Slc.base_program_ns(),
            slc_erase_ns: FlashTechnology::Slc.base_erase_ns(),
        }
    }
}

/// A mapped physical page: flat plane index plus block within the plane.
#[derive(Debug, Clone, Copy)]
struct MappedPage {
    plane: u32,
    block: u32,
}

/// Block sentinel for "page folded into the capacity tier, exact block
/// unknown". Reads to such pages pay capacity-technology latency;
/// overwrites invalidate a hashed capacity block (the same approximation
/// used for warm-up resident data). Never collides with a real cache block
/// and, combined with any valid plane index, never encodes to `LPN_EMPTY`.
const CAPACITY_RESIDENT: u32 = u32::MAX - 1;

/// Entries per lazily allocated mapping chunk (32 KiB of `u64`s).
const LPN_CHUNK: usize = 4096;
/// Sentinel for "logical page never mapped" (a real entry would need plane
/// and block both at `u32::MAX`, far beyond any valid geometry).
const LPN_EMPTY: u64 = u64::MAX;

/// Chunked logical-to-physical mapping table.
///
/// Logical page numbers are pre-reduced modulo `logical_pages`, so the key
/// space is dense and bounded; a two-level array of lazily allocated
/// 4096-entry chunks replaces the former `HashMap<u64, MappedPage>` on the
/// simulator's hottest path — a mapping probe is one shift and two indexed
/// loads instead of a SipHash computation plus bucket walk, and memory
/// stays proportional to the touched fraction of the address space.
#[derive(Debug, Default)]
struct LpnMap {
    chunks: Vec<Option<Box<[u64]>>>,
}

impl LpnMap {
    #[inline]
    fn get(&self, lpn: u64) -> Option<MappedPage> {
        let chunk = self.chunks.get((lpn as usize) / LPN_CHUNK)?.as_ref()?;
        let v = chunk[(lpn as usize) % LPN_CHUNK];
        (v != LPN_EMPTY).then_some(MappedPage {
            plane: (v >> 32) as u32,
            block: v as u32,
        })
    }

    #[inline]
    fn insert(&mut self, lpn: u64, m: MappedPage) {
        let ci = (lpn as usize) / LPN_CHUNK;
        if ci >= self.chunks.len() {
            self.chunks.resize_with(ci + 1, || None);
        }
        let chunk =
            self.chunks[ci].get_or_insert_with(|| vec![LPN_EMPTY; LPN_CHUNK].into_boxed_slice());
        chunk[(lpn as usize) % LPN_CHUNK] = (u64::from(m.plane) << 32) | u64::from(m.block);
    }
}

/// Reusable per-run buffers: the latency vectors and the outstanding-request
/// heap [`Simulator::run`] needs. A validator evaluating thousands of
/// candidate configurations re-runs the simulator constantly; passing one
/// scratch per worker thread to [`Simulator::run_scratch`] reuses the grown
/// allocations across runs instead of paying four fresh heap allocations
/// (plus their growth reallocations) per trace replay.
#[derive(Debug, Default)]
pub struct RunScratch {
    latencies: Vec<u64>,
    read_lat: Vec<u64>,
    write_lat: Vec<u64>,
    outstanding: BinaryHeap<Reverse<u64>>,
}

/// The SSD simulator.
///
/// # Examples
///
/// ```
/// use iotrace::gen::WorkloadKind;
/// use ssdsim::config::SsdConfig;
/// use ssdsim::sim::Simulator;
///
/// let trace = WorkloadKind::Database.spec().generate(2_000, 1);
/// let mut sim = Simulator::new(SsdConfig::default());
/// sim.warm_up(0.5);
/// let report = sim.run(&trace);
/// assert!(report.latency.mean_ns > 0.0);
/// assert!(report.throughput_bps > 0.0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    cfg: SsdConfig,
    timing: Timing,
    flash: FlashArray,
    mapping: LpnMap,
    data_cache: LruCache,
    cmt: LruCache,
    channel_free: Vec<u64>,
    die_free: Vec<u64>,
    /// End of the currently executing multiplane program window per die.
    mp_window_end: Vec<u64>,
    /// Planes already participating in the current window per die.
    mp_used: Vec<u32>,
    /// Die that received the most recently issued program (multiplane
    /// merging requires consecutively issued same-die programs).
    last_program_die: Option<usize>,
    link_tx_free: u64,
    link_rx_free: u64,
    counters: ActivityCounters,
    dirty_fifo: VecDeque<(u64, u64)>,
    dirty_window: usize,
    cache_read_hits: u64,
    cache_read_misses: u64,
    cmt_hits: u64,
    cmt_misses: u64,
    data_cache_evictions: u64,
    cmt_evictions: u64,
    host_page_writes: u64,
    planes_per_channel: u32,
    planes_per_die: u32,
    logical_pages: u64,
    entries_per_tp: u64,
    /// Diagnostic: total ns reads spent waiting for busy planes.
    pub diag_plane_wait_ns: u64,
    /// Diagnostic: total ns reads spent waiting for busy channels.
    pub diag_channel_wait_ns: u64,
    /// Diagnostic: flash reads issued.
    pub diag_flash_reads: u64,
    /// Diagnostic: translation-page flash reads.
    pub diag_tp_reads: u64,
    /// Diagnostic: flash programs issued (host destages + metadata).
    pub diag_flash_programs: u64,
    /// Diagnostic: total ns programs spent waiting for busy dies.
    pub diag_write_plane_wait_ns: u64,
    /// Diagnostic: total ns program data transfers waited for channels.
    pub diag_write_channel_wait_ns: u64,
    /// Diagnostic: die time consumed by GC / wear-leveling migrations, ns.
    pub diag_gc_stall_ns: u64,
    /// Diagnostic: flash service time paid on cache misses, ns.
    pub diag_cache_miss_ns: u64,
    /// Diagnostic: die time consumed folding SLC-cache blocks into the
    /// capacity tier, ns (hybrid families only).
    pub diag_slc_migration_ns: u64,
    /// Diagnostic: host-side time requests waited for queue admission, ns.
    pub diag_queue_wait_ns: u64,
    /// Diagnostic: total end-to-end request time (arrival → completion), ns.
    pub diag_total_latency_ns: u64,
    /// Cumulative channel time consumed (transfers + GC traffic), ns.
    channel_busy_ns: u64,
    /// Cumulative die time consumed (reads, programs, background work), ns.
    die_busy_ns: u64,
    // --- device-observatory sampling state (active only while the
    // telemetry switch is on at `run()` entry) ---------------------------
    sample_interval_ns: u64,
    sample_cap: usize,
    series: DeviceSeries,
    next_sample_at: u64,
    sampled_channel_busy_ns: u64,
    sampled_die_busy_ns: u64,
    sampled_gc_stall_ns: u64,
    /// Optional per-tenant lane accounting for merged traces (armed via
    /// [`Simulator::set_lanes`], harvested via [`Simulator::take_lanes`]).
    lanes: Option<TenantLanes>,
    /// SLC-cache blocks per plane (0 = homogeneous device family).
    slc_cache_blocks: u32,
    /// Hybrid only: logical pages currently mapped into each cache block
    /// (`plane * slc_cache_blocks + block`). Drained when the block folds so
    /// reads afterwards pay capacity-tier latency; entries whose mapping has
    /// moved on are skipped at drain time.
    slc_resident: Vec<Vec<u64>>,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SsdConfig::validate`].
    pub fn new(cfg: SsdConfig) -> Self {
        cfg.validate().expect("valid configuration");
        let data_cache_pages =
            (u64::from(cfg.data_cache_mb) << 20) / u64::from(cfg.page_size_bytes);
        let cmt_tps = (u64::from(cfg.cmt_capacity_mb) << 20) / u64::from(cfg.page_size_bytes);
        let entries_per_tp = u64::from(cfg.page_size_bytes) / u64::from(cfg.cmt_entry_bytes.max(1));
        let timing = Timing::from_config(&cfg);
        let flash = FlashArray::new(&cfg);
        let planes_per_channel = cfg.chips_per_channel * cfg.dies_per_chip * cfg.planes_per_die;
        let slc_cache_blocks = cfg.slc_cache_blocks_per_plane();
        let slc_resident =
            vec![Vec::new(); cfg.total_planes() as usize * slc_cache_blocks as usize];
        Simulator {
            timing,
            mapping: LpnMap::default(),
            data_cache: LruCache::new(data_cache_pages.min(1 << 24) as usize),
            cmt: LruCache::new(cmt_tps.min(1 << 22) as usize),
            channel_free: vec![0; cfg.channel_count as usize],
            die_free: vec![0; cfg.total_dies() as usize],
            mp_window_end: vec![0; cfg.total_dies() as usize],
            mp_used: vec![0; cfg.total_dies() as usize],
            last_program_die: None,
            link_tx_free: 0,
            link_rx_free: 0,
            counters: ActivityCounters::default(),
            dirty_fifo: VecDeque::new(),
            // Durability bound: at most this many acknowledged-but-unflushed
            // pages may sit in the write-back cache before destaging kicks
            // in (a quarter of the cache, capped at 64k pages).
            dirty_window: ((data_cache_pages / 4).clamp(64, 65_536)) as usize,
            cache_read_hits: 0,
            cache_read_misses: 0,
            cmt_hits: 0,
            cmt_misses: 0,
            data_cache_evictions: 0,
            cmt_evictions: 0,
            host_page_writes: 0,
            planes_per_channel,
            planes_per_die: cfg.planes_per_die,
            logical_pages: cfg.logical_pages().max(1),
            entries_per_tp: entries_per_tp.max(1),
            diag_plane_wait_ns: 0,
            diag_channel_wait_ns: 0,
            diag_flash_reads: 0,
            diag_tp_reads: 0,
            diag_flash_programs: 0,
            diag_write_plane_wait_ns: 0,
            diag_write_channel_wait_ns: 0,
            diag_gc_stall_ns: 0,
            diag_slc_migration_ns: 0,
            diag_cache_miss_ns: 0,
            diag_queue_wait_ns: 0,
            diag_total_latency_ns: 0,
            channel_busy_ns: 0,
            die_busy_ns: 0,
            sample_interval_ns: DEFAULT_SAMPLE_INTERVAL_NS,
            sample_cap: DEFAULT_SAMPLE_CAP,
            series: DeviceSeries::default(),
            next_sample_at: u64::MAX,
            sampled_channel_busy_ns: 0,
            sampled_die_busy_ns: 0,
            sampled_gc_stall_ns: 0,
            lanes: None,
            slc_cache_blocks,
            slc_resident,
            flash,
            cfg,
        }
    }

    /// Arms per-tenant lane accounting: every subsequent request is binned
    /// by its pre-modulo LBA into the lane whose start offset it falls in
    /// (see [`TenantLanes`]). Pass the ascending lane starts returned by
    /// the partitioned trace merge.
    pub fn set_lanes(&mut self, starts: &[u64]) {
        self.lanes = Some(TenantLanes::new(starts));
    }

    /// Takes the accumulated lane totals, disarming lane accounting.
    /// Returns `None` when [`Simulator::set_lanes`] was never called.
    pub fn take_lanes(&mut self) -> Option<TenantLanes> {
        self.lanes.take()
    }

    /// Reconfigures device-observatory sampling: samples are taken every
    /// `interval_ns` of simulated time, at most `max_samples` per run
    /// (later boundaries are counted as dropped). An interval of `0`
    /// disables sampling entirely. Sampling only occurs while the
    /// process-wide telemetry switch is on.
    pub fn set_sampling(&mut self, interval_ns: u64, max_samples: usize) {
        self.sample_interval_ns = interval_ns;
        self.sample_cap = max_samples;
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Pre-fills the flash array to `fill_fraction` occupancy, modeling the
    /// paper's warm-up phase (§4.2: "occupy at least 50% of the capacity").
    pub fn warm_up(&mut self, fill_fraction: f64) {
        let _span = telemetry::span::Span::enter("sim.warm_up");
        self.flash.warm_up(fill_fraction);
    }

    /// Flushes every acknowledged-but-unwritten page to flash and returns
    /// the time at which the device is fully quiescent (all dirty data
    /// durable, all channels and dies idle), starting no earlier than
    /// `from_ns`. This is the device-level equivalent of an `fsync` at the
    /// end of a run: sustained write throughput must include it, otherwise
    /// a large write-back cache makes bandwidth look DRAM-bound.
    pub fn drain(&mut self, from_ns: u64) -> u64 {
        let _span = telemetry::span::Span::enter("sim.drain");
        let mut done = from_ns;
        while let Some((lpn, _)) = self.dirty_fifo.pop_front() {
            if self.data_cache.is_dirty(lpn) {
                self.data_cache.mark_clean(lpn);
                done = done.max(self.program_lpn(lpn, from_ns));
            }
        }
        let resources_idle = self
            .die_free
            .iter()
            .chain(self.channel_free.iter())
            .copied()
            .max()
            .unwrap_or(0);
        done.max(resources_idle)
    }

    /// Simulates the whole trace and returns the report.
    ///
    /// Running consumes accumulated state (caches and flash occupancy
    /// persist across calls, so back-to-back runs model a continuously
    /// operating device).
    pub fn run(&mut self, trace: &Trace) -> SimReport {
        let mut scratch = RunScratch::default();
        self.run_scratch(trace, &mut scratch)
    }

    /// [`Simulator::run`] with caller-provided scratch buffers, for callers
    /// that replay many traces back to back (the validator's hot path).
    /// The scratch is cleared on entry; its grown capacity is what carries
    /// over between runs.
    pub fn run_scratch(&mut self, trace: &Trace, scratch: &mut RunScratch) -> SimReport {
        let _span = telemetry::span::Span::enter("sim.run");
        // Device-observatory sampling: decided once per run, so the hot
        // loop pays one branch on a cached local when disabled (the
        // switch probe itself is a single relaxed atomic load).
        let sampling = telemetry::enabled() && self.sample_interval_ns > 0;
        if sampling {
            self.series = DeviceSeries::new(self.sample_interval_ns);
            self.next_sample_at = u64::MAX;
            self.sampled_channel_busy_ns = self.channel_busy_ns;
            self.sampled_die_busy_ns = self.die_busy_ns;
            self.sampled_gc_stall_ns = self.diag_gc_stall_ns;
        }
        scratch.latencies.clear();
        scratch.latencies.reserve(trace.len());
        scratch.read_lat.clear();
        scratch.write_lat.clear();
        scratch.outstanding.clear();
        let RunScratch {
            latencies,
            read_lat,
            write_lat,
            outstanding,
        } = scratch;
        let mut latency_buckets = LatencyBuckets::default();
        let qd = self.cfg.effective_queue_depth() as usize;
        let mut host_bytes: u64 = 0;
        let mut first_arrival = None;
        let mut last_completion: u64 = 0;
        // Controller-activity tracking: the storage processor spends CPU
        // cycles on every outstanding request (submission handling, DMA
        // setup, polling, completion). Engagement is modeled as a fixed
        // fraction of aggregate device response time, so configurations
        // that finish requests faster save controller cycles — the paper's
        // explanation for the energy savings of learned configurations.
        let mut outstanding_time_ns: u128 = 0;

        for event in trace {
            let arrival = event.timestamp_ns;
            first_arrival.get_or_insert(arrival);

            // Emit device samples for every interval boundary the simulated
            // clock crossed since the previous event. The state at a
            // boundary is "after every event that arrived before it" —
            // a pure function of the trace, so series are deterministic.
            if sampling {
                if self.next_sample_at == u64::MAX {
                    self.next_sample_at = arrival.saturating_add(self.sample_interval_ns);
                } else {
                    self.sample_up_to(arrival, outstanding.len() as u64);
                }
            }

            // Queue admission: drain completions that happened before now.
            while let Some(&Reverse(t)) = outstanding.peek() {
                if t <= arrival {
                    outstanding.pop();
                } else {
                    break;
                }
            }
            let mut admit = arrival;
            while outstanding.len() >= qd {
                let Reverse(t) = outstanding.pop().expect("nonempty when full");
                admit = admit.max(t);
            }

            let start = admit + self.timing.protocol_ns;
            self.destage_aged(start);

            // Logical page span.
            let byte_start = event.lba * 512;
            let byte_end = byte_start + u64::from(event.size_bytes);
            let first_lpn = byte_start / u64::from(self.cfg.page_size_bytes);
            let last_lpn = (byte_end.saturating_sub(1)) / u64::from(self.cfg.page_size_bytes);
            let n_pages = (last_lpn - first_lpn + 1).min(MAX_PAGES_PER_REQUEST);

            let completion = match event.op {
                OpKind::Read => {
                    let mut flash_done = start;
                    for i in 0..n_pages {
                        let lpn = (first_lpn + i) % self.logical_pages;
                        let done = self.service_read(lpn, start);
                        flash_done = flash_done.max(done);
                    }
                    // Return data to the host over the link.
                    self.link_rx_transfer(flash_done, u64::from(event.size_bytes))
                }
                OpKind::Write => {
                    // Data must cross the link before it can be buffered.
                    let data_at = self.link_tx_transfer(start, u64::from(event.size_bytes));
                    let mut done = data_at;
                    let page = u64::from(self.cfg.page_size_bytes);
                    for i in 0..n_pages {
                        let lpn = (first_lpn + i) % self.logical_pages;
                        // Sub-page writes require read-modify-write: the
                        // untouched remainder of the page must be fetched
                        // before the page can be rewritten (unless it is
                        // already buffered). This is what keeps huge flash
                        // pages from being a free lunch for small writes.
                        let covers_whole_page = byte_start <= (first_lpn + i) * page
                            && byte_end >= (first_lpn + i + 1) * page;
                        let t_ready = if covers_whole_page || self.data_cache.contains(lpn) {
                            data_at
                        } else {
                            self.service_read(lpn, data_at)
                        };
                        let d = self.service_write(lpn, t_ready);
                        done = done.max(d);
                    }
                    self.host_page_writes += n_pages;
                    done
                }
            };

            // Device response time: measured from entry into the device
            // queue (MQSim semantics). Host-side stall while the queue is
            // full dilates the makespan (throughput) but is not part of a
            // request's latency.
            let latency = completion.saturating_sub(admit);
            // Bottleneck attribution denominators: host-side admission wait
            // plus the in-device time, i.e. the full arrival → completion
            // interval the host experienced.
            let queue_wait = admit.saturating_sub(arrival);
            self.diag_queue_wait_ns += queue_wait;
            self.diag_total_latency_ns += latency + queue_wait;
            if let Some(lanes) = &mut self.lanes {
                lanes.observe(event.lba, u64::from(event.size_bytes), latency);
            }
            latencies.push(latency);
            latency_buckets.observe(latency);
            match event.op {
                OpKind::Read => read_lat.push(latency),
                OpKind::Write => write_lat.push(latency),
            }
            outstanding.push(Reverse(completion));
            last_completion = last_completion.max(completion);
            host_bytes += u64::from(event.size_bytes);
            outstanding_time_ns += u128::from(latency);
        }

        if sampling {
            // Flush interval boundaries up to the end of the run so the
            // series covers the whole makespan.
            self.sample_up_to(last_completion, 0);
        }
        let makespan = last_completion
            .saturating_sub(first_arrival.unwrap_or(0))
            .max(1);
        self.counters.elapsed_ns = makespan;
        // ~6% of each request's in-device time costs controller cycles,
        // bounded by wall-clock (the processor cannot be more than busy).
        self.counters.controller_busy_ns += ((outstanding_time_ns * 6 / 100) as u64).min(makespan);
        let flash_stats = self.flash.stats();
        self.counters.flash_programs =
            flash_stats.programs + flash_stats.migrated_pages + flash_stats.slc_migrated_pages;
        self.counters.flash_erases = flash_stats.erases;
        let energy = compute_energy(&self.cfg, &self.counters);

        let denom_reads = self.cache_read_hits + self.cache_read_misses;
        let denom_cmt = self.cmt_hits + self.cmt_misses;
        SimReport {
            latency: LatencySummary::from_latencies(latencies),
            read_latency: LatencySummary::from_latencies(read_lat),
            write_latency: LatencySummary::from_latencies(write_lat),
            throughput_bps: host_bytes as f64 / (makespan as f64 / 1e9),
            makespan_ns: makespan,
            host_bytes,
            read_cache_hit_rate: if denom_reads > 0 {
                self.cache_read_hits as f64 / denom_reads as f64
            } else {
                0.0
            },
            cmt_hit_rate: if denom_cmt > 0 {
                self.cmt_hits as f64 / denom_cmt as f64
            } else {
                0.0
            },
            data_cache_evictions: self.data_cache_evictions,
            cmt_evictions: self.cmt_evictions,
            histogram_percentiles: latency_buckets.percentiles(),
            latency_buckets,
            flash: flash_stats,
            read_breakdown: ReadBreakdown {
                flash_reads: self.diag_flash_reads,
                mapping_reads: self.diag_tp_reads,
                mean_die_wait_ns: if self.diag_flash_reads > 0 {
                    self.diag_plane_wait_ns as f64 / self.diag_flash_reads as f64
                } else {
                    0.0
                },
                mean_channel_wait_ns: if self.diag_flash_reads > 0 {
                    self.diag_channel_wait_ns as f64 / self.diag_flash_reads as f64
                } else {
                    0.0
                },
            },
            write_breakdown: WriteBreakdown {
                flash_programs: self.diag_flash_programs,
                mean_die_wait_ns: if self.diag_flash_programs > 0 {
                    self.diag_write_plane_wait_ns as f64 / self.diag_flash_programs as f64
                } else {
                    0.0
                },
                mean_channel_wait_ns: if self.diag_flash_programs > 0 {
                    self.diag_write_channel_wait_ns as f64 / self.diag_flash_programs as f64
                } else {
                    0.0
                },
            },
            bottleneck: BottleneckReport::from_totals(
                self.diag_total_latency_ns,
                self.diag_channel_wait_ns + self.diag_write_channel_wait_ns,
                self.diag_plane_wait_ns + self.diag_write_plane_wait_ns,
                self.diag_gc_stall_ns,
                self.diag_cache_miss_ns,
                self.diag_queue_wait_ns,
                self.diag_slc_migration_ns,
            ),
            device: std::mem::take(&mut self.series),
            write_amplification: if self.host_page_writes > 0 {
                (flash_stats.programs + flash_stats.migrated_pages + flash_stats.slc_migrated_pages)
                    as f64
                    / self.host_page_writes as f64
            } else {
                0.0
            },
            average_power_w: energy.average_power_w(makespan),
            energy,
        }
    }

    // ---- internal helpers ------------------------------------------------

    /// Consumes one page-transfer of channel capacity, starting no earlier
    /// than `earliest`. The channel pointer tracks consumed capacity from
    /// `now` onward instead of reserving the idle gap before a future
    /// `earliest`, so one plane-blocked transfer cannot poison the channel
    /// for unrelated requests.
    fn channel_use(&mut self, ch: usize, earliest: u64, now: u64) -> u64 {
        let capacity = self.channel_free[ch].max(now);
        let start = earliest.max(capacity);
        self.channel_free[ch] = capacity + self.timing.transfer_ns;
        self.channel_busy_ns += self.timing.transfer_ns;
        start + self.timing.transfer_ns
    }

    /// Maximum age of an acknowledged-but-unflushed write before the
    /// destager pushes it to flash (5 ms), bounding data loss on power
    /// failure like a real controller's flush policy.
    const DIRTY_AGE_LIMIT_NS: u64 = 5_000_000;

    /// Flushes dirty cache entries older than the age limit. At most a
    /// handful of pages are destaged per call: real controllers pace
    /// destaging so background programs trickle out instead of storming
    /// every plane at once.
    fn destage_aged(&mut self, now: u64) {
        let mut budget = 4;
        while budget > 0 {
            let Some(&(lpn, dirtied_at)) = self.dirty_fifo.front() else {
                break;
            };
            if now.saturating_sub(dirtied_at) < Self::DIRTY_AGE_LIMIT_NS {
                break;
            }
            self.dirty_fifo.pop_front();
            if self.data_cache.is_dirty(lpn) {
                self.data_cache.mark_clean(lpn);
                self.program_lpn(lpn, now);
                budget -= 1;
            }
        }
    }

    fn channel_of_plane(&self, plane: u32) -> usize {
        (plane / self.planes_per_channel) as usize
    }

    fn die_of_plane(&self, plane: u32) -> usize {
        (plane / self.planes_per_die) as usize
    }

    /// Serializes `bytes` over the host link's device-to-host direction
    /// (read returns) starting no earlier than `t`. The link is full duplex:
    /// read returns and write submissions use independent timelines.
    fn link_rx_transfer(&mut self, t: u64, bytes: u64) -> u64 {
        let dur = (bytes as f64 / self.timing.link_bytes_per_ns) as u64 + 1;
        let start = t.max(self.link_rx_free);
        self.link_rx_free = start + dur;
        self.link_rx_free
    }

    /// Serializes `bytes` over the host-to-device direction (write data).
    fn link_tx_transfer(&mut self, t: u64, bytes: u64) -> u64 {
        let dur = (bytes as f64 / self.timing.link_bytes_per_ns) as u64 + 1;
        let start = t.max(self.link_tx_free);
        self.link_tx_free = start + dur;
        self.link_tx_free
    }

    /// Address translation through the cached mapping table. Returns the
    /// time at which the translation is available.
    fn translate(&mut self, lpn: u64, t: u64) -> u64 {
        let tpn = lpn / self.entries_per_tp;
        self.counters.dram_bytes += u64::from(self.cfg.cmt_entry_bytes);
        if self.cmt.touch(tpn) {
            self.cmt_hits += 1;
            return t + self.timing.dram_entry_ns;
        }
        self.cmt_misses += 1;
        // Fetch the translation page from flash (DFTL-style).
        let loc = pseudo_location(&self.cfg, tpn ^ 0x5EED_7AB1E);
        let plane = loc.plane_index(&self.cfg);
        self.diag_tp_reads += 1;
        let done = self.flash_read_at(plane, t);
        if let Some((evicted, dirty)) = self.cmt.insert(tpn, false) {
            if evicted != tpn {
                self.cmt_evictions += 1;
            }
            if dirty {
                // Write back the evicted dirty translation page.
                self.internal_program(done);
            }
        }
        done + self.timing.dram_entry_ns
    }

    /// Raw flash page read on `plane` starting no earlier than `t`, at the
    /// capacity technology's sense latency.
    fn flash_read_at(&mut self, plane: u32, t: u64) -> u64 {
        self.flash_read_at_ns(plane, t, self.timing.read_ns)
    }

    /// Raw flash page read on `plane` starting no earlier than `t` with an
    /// explicit sense latency (`read_ns`), so SLC-cache-resident pages on
    /// hybrid devices sense at SLC speed. The die is the execution unit: a
    /// read waits for whatever its die is doing (unless suspension lets it
    /// preempt an in-flight program).
    fn flash_read_at_ns(&mut self, plane: u32, t: u64, read_ns: u64) -> u64 {
        let didx = self.die_of_plane(plane);
        let sense_start = if self.cfg.program_suspension_enabled && self.die_free[didx] > t {
            // Suspend the in-flight operation. NAND programs can only pause
            // at phase boundaries, so the read still waits for a quarter of
            // the remaining busy time plus the suspension overhead; the
            // suspended operation is pushed back by the intrusion.
            let remaining = self.die_free[didx] - t;
            let wait = self.timing.suspend_program_ns + remaining / 2;
            self.die_free[didx] += read_ns + self.timing.suspend_program_ns;
            self.die_busy_ns += read_ns + self.timing.suspend_program_ns;
            t + wait
        } else {
            let s = t.max(self.die_free[didx]);
            self.die_free[didx] = s + read_ns;
            self.die_busy_ns += read_ns;
            s
        };
        self.diag_plane_wait_ns += sense_start.saturating_sub(t);
        self.diag_flash_reads += 1;
        // Every flash read exists because some cache (data cache or CMT)
        // missed; its raw service time is the cache-miss component of the
        // bottleneck attribution.
        self.diag_cache_miss_ns += read_ns + self.timing.transfer_ns;
        let sense_end = sense_start + read_ns;
        let ch = self.channel_of_plane(plane);
        let done = self.channel_use(ch, sense_end, t);
        self.diag_channel_wait_ns += done.saturating_sub(sense_end + self.timing.transfer_ns);
        self.counters.flash_reads += 1;
        done
    }

    /// Sense latency for a mapped block: SLC speed while the page sits in
    /// the cache tier of a hybrid device, capacity speed otherwise.
    fn read_ns_for_block(&self, block: u32) -> u64 {
        if block < self.slc_cache_blocks {
            self.timing.slc_read_ns
        } else {
            self.timing.read_ns
        }
    }

    /// Services one logical-page read; returns its completion time.
    fn service_read(&mut self, lpn: u64, t: u64) -> u64 {
        let t = self.translate(lpn, t);
        if self.data_cache.touch(lpn) {
            self.cache_read_hits += 1;
            self.counters.dram_bytes += u64::from(self.cfg.page_size_bytes);
            return t + self.timing.dram_page_ns;
        }
        self.cache_read_misses += 1;
        let (plane, read_ns) = match self.mapping.get(lpn) {
            Some(m) => (m.plane, self.read_ns_for_block(m.block)),
            None => (
                pseudo_location(&self.cfg, lpn).plane_index(&self.cfg),
                self.timing.read_ns,
            ),
        };
        let done = self.flash_read_at_ns(plane, t, read_ns);
        // Fill the cache with the clean page.
        if let Some((evicted, dirty)) = self.data_cache.insert(lpn, false) {
            if evicted != lpn {
                self.data_cache_evictions += 1;
                if dirty {
                    self.program_lpn(evicted, done);
                }
            }
        }
        done
    }

    /// Services one logical-page write; returns its host-visible completion.
    fn service_write(&mut self, lpn: u64, t: u64) -> u64 {
        self.counters.dram_bytes += u64::from(self.cfg.page_size_bytes);
        match self.cfg.cache_mode {
            CacheMode::WriteBack => {
                let was_dirty = self.data_cache.is_dirty(lpn);
                let done = match self.data_cache.insert(lpn, true) {
                    // Cache bypass (zero capacity): synchronous program.
                    Some((evicted, dirty)) if evicted == lpn => {
                        let _ = dirty;
                        return self.program_lpn(lpn, t);
                    }
                    Some((evicted, dirty)) => {
                        self.data_cache_evictions += 1;
                        if dirty {
                            // Background flush of the evicted victim.
                            self.program_lpn(evicted, t);
                        }
                        t + self.timing.dram_page_ns
                    }
                    None => t + self.timing.dram_page_ns,
                };
                if !was_dirty {
                    self.dirty_fifo.push_back((lpn, t));
                }
                // Background destaging: bound the acknowledged-but-unflushed
                // window for durability. Overwrites within the window
                // coalesce (they re-dirty an entry already queued).
                while self.data_cache.dirty_len() > self.dirty_window {
                    match self.dirty_fifo.pop_front() {
                        Some((victim, _)) => {
                            if self.data_cache.is_dirty(victim) {
                                self.data_cache.mark_clean(victim);
                                self.program_lpn(victim, t);
                            }
                        }
                        None => break,
                    }
                }
                done
            }
            CacheMode::WriteThrough => {
                let done = self.program_lpn(lpn, t);
                if let Some((evicted, _)) = self.data_cache.insert(lpn, false) {
                    if evicted != lpn {
                        self.data_cache_evictions += 1;
                    }
                }
                done
            }
        }
    }

    /// Programs the current contents of `lpn` to flash: invalidates the old
    /// copy, allocates a striped location, charges timing, and handles any
    /// GC/wear-leveling fallout. Returns the program completion time.
    fn program_lpn(&mut self, lpn: u64, t: u64) -> u64 {
        // Invalidate the previous physical copy.
        match self.mapping.get(lpn) {
            Some(old) if old.block == CAPACITY_RESIDENT => {
                // Folded into the capacity tier; the exact block is unknown.
                self.flash.invalidate_somewhere(old.plane, splitmix64(lpn));
            }
            Some(old) => {
                let (plane, block) = (old.plane, old.block);
                self.flash.invalidate(plane, block);
            }
            None => {
                let plane = pseudo_location(&self.cfg, lpn).plane_index(&self.cfg);
                self.flash.invalidate_somewhere(plane, splitmix64(lpn));
            }
        }

        let plane = self.flash.next_write_plane();
        let (block, _page, bg_ops) = self.flash.program_page(plane);
        self.mapping.insert(lpn, MappedPage { plane, block });
        if block < self.slc_cache_blocks {
            self.slc_resident[plane as usize * self.slc_cache_blocks as usize + block as usize]
                .push(lpn);
        }

        // Update the translation entry (dirty in the CMT).
        let tpn = lpn / self.entries_per_tp;
        if !self.cmt.mark_dirty(tpn) {
            if let Some((evicted, dirty)) = self.cmt.insert(tpn, true) {
                if evicted != tpn {
                    self.cmt_evictions += 1;
                }
                if dirty {
                    self.internal_program(t);
                }
            }
        }

        let done = self.internal_program_on(plane, t);
        for op in bg_ops {
            self.charge_background(op, done);
        }
        done
    }

    /// A program whose target plane is chosen by striping (used for
    /// metadata writes where the destination does not matter).
    fn internal_program(&mut self, t: u64) -> u64 {
        let plane = self.flash.next_write_plane();
        let (_block, _page, bg_ops) = self.flash.program_page(plane);
        let done = self.internal_program_on(plane, t);
        for op in bg_ops {
            self.charge_background(op, done);
        }
        done
    }

    /// Charges channel + die time for one page program on `plane`.
    ///
    /// Dies execute one operation at a time, but programs issued while a
    /// program window is already executing on the same die join it as a
    /// multiplane operation (up to `planes_per_die` pages per window).
    /// Plane-first allocation schemes therefore multiply effective program
    /// bandwidth, while channel-first schemes trade that for read
    /// parallelism — the core tension behind the paper's Table 5.
    fn internal_program_on(&mut self, plane: u32, t: u64) -> u64 {
        // On hybrid families every foreground program lands in the SLC
        // cache tier and completes at SLC program speed — the whole point
        // of fronting dense flash with a cache.
        let program_ns = if self.slc_cache_blocks > 0 {
            self.timing.slc_program_ns
        } else {
            self.timing.program_ns
        };
        let ch = self.channel_of_plane(plane);
        let data_in = self.channel_use(ch, t, t);
        let didx = self.die_of_plane(plane);
        self.diag_flash_programs += 1;
        self.diag_write_channel_wait_ns += data_in.saturating_sub(t + self.timing.transfer_ns);

        // Join the in-flight multiplane window when possible: the
        // transaction scheduler batches programs that arrive while a
        // program window is still executing on the die, up to one per
        // plane. This is what makes planes multiply write bandwidth.
        if self.mp_used[didx] < self.cfg.planes_per_die && self.mp_window_end[didx] > data_in {
            self.mp_used[didx] += 1;
            return self.mp_window_end[didx];
        }
        self.last_program_die = Some(didx);
        // Open a new program window on the die (capacity-pointer model: a
        // program waiting on its data transfer does not reserve the gap).
        let die_capacity = self.die_free[didx].max(t);
        let prog_start = data_in.max(die_capacity);
        let done = prog_start + program_ns;
        self.diag_write_plane_wait_ns += prog_start.saturating_sub(data_in);
        self.die_free[didx] = die_capacity + program_ns;
        self.die_busy_ns += program_ns;
        self.mp_window_end[didx] = done;
        self.mp_used[didx] = 1;
        done
    }

    /// Charges the resource cost of background flash work (GC cycles,
    /// wear-leveling swaps, and SLC-cache folds).
    fn charge_background(&mut self, op: BackgroundOp, t: u64) {
        let (plane, pages) = match op {
            BackgroundOp::GcCycle { plane, pages } => (plane, pages),
            BackgroundOp::WearLevelSwap { plane, pages } => (plane, pages),
            BackgroundOp::SlcMigration {
                plane,
                block,
                pages,
            } => {
                self.charge_slc_migration(plane, block, pages, t);
                return;
            }
        };
        let per_page = self.timing.read_ns + self.timing.program_ns + 2 * self.timing.transfer_ns;
        let mut total = u64::from(pages) * per_page;
        if !self.cfg.erase_suspension_enabled {
            total += self.timing.erase_ns;
        }
        self.counters.flash_reads += u64::from(pages);

        let didx = self.die_of_plane(plane);
        let die_add = if self.cfg.preemptible_gc {
            // Migrations yield to host I/O: only half the GC time blocks
            // the die's timeline; the rest hides in idle gaps.
            total / 2
        } else {
            // The die stalls for the whole GC cycle.
            total
        };
        self.die_free[didx] = self.die_free[didx].max(t) + die_add;
        self.diag_gc_stall_ns += die_add;
        self.die_busy_ns += die_add;
        // Channel time for the migrated pages' transfers.
        let ch_add = u64::from(pages) * 2 * self.timing.transfer_ns / 4;
        let ch = self.channel_of_plane(plane);
        self.channel_free[ch] = self.channel_free[ch].max(t) + ch_add;
        self.channel_busy_ns += ch_add;
    }

    /// Charges one SLC-cache fold (`pages` SLC reads + capacity programs,
    /// then an SLC-mode erase) and relocates the folded pages' mappings to
    /// the capacity tier so later reads pay capacity latency.
    fn charge_slc_migration(&mut self, plane: u32, block: u32, pages: u32, t: u64) {
        // Relocate mappings first: anything still pointing at the folded
        // cache block now lives in the capacity tier (block unknown).
        let idx = plane as usize * self.slc_cache_blocks as usize + block as usize;
        let lpns = std::mem::take(&mut self.slc_resident[idx]);
        for lpn in lpns {
            if let Some(m) = self.mapping.get(lpn) {
                if m.plane == plane && m.block == block {
                    self.mapping.insert(
                        lpn,
                        MappedPage {
                            plane,
                            block: CAPACITY_RESIDENT,
                        },
                    );
                }
            }
        }

        let per_page =
            self.timing.slc_read_ns + self.timing.program_ns + 2 * self.timing.transfer_ns;
        let mut total = u64::from(pages) * per_page;
        if !self.cfg.erase_suspension_enabled {
            total += self.timing.slc_erase_ns;
        }
        self.counters.flash_reads += u64::from(pages);

        let didx = self.die_of_plane(plane);
        // Folds pace themselves like preemptible GC when the device is
        // configured for it: half the work hides in idle die time.
        let die_add = if self.cfg.preemptible_gc {
            total / 2
        } else {
            total
        };
        self.die_free[didx] = self.die_free[didx].max(t) + die_add;
        self.diag_slc_migration_ns += die_add;
        self.die_busy_ns += die_add;
        let ch_add = u64::from(pages) * 2 * self.timing.transfer_ns / 4;
        let ch = self.channel_of_plane(plane);
        self.channel_free[ch] = self.channel_free[ch].max(t) + ch_add;
        self.channel_busy_ns += ch_add;
    }

    /// Emits one [`DeviceSample`] per elapsed interval boundary up to `now`.
    ///
    /// The simulator has no stepped clock, so sampling is backfill-driven:
    /// each arriving event flushes every boundary it skipped past. Busy
    /// fractions are deltas of cumulative busy-time counters over the
    /// interval normalized by resource count; occupancy, queue depth, and
    /// backlog are the instantaneous values at flush time (the state has not
    /// changed since the previous event, so this is exact).
    fn sample_up_to(&mut self, now: u64, queue_depth: u64) {
        while self.next_sample_at <= now {
            if self.series.samples.len() >= self.sample_cap {
                // Buffer full: account every remaining boundary arithmetically
                // so a pathologically small interval stays O(1) per event.
                let skipped = (now - self.next_sample_at) / self.sample_interval_ns + 1;
                self.series.dropped += skipped;
                self.next_sample_at = self
                    .next_sample_at
                    .saturating_add(skipped.saturating_mul(self.sample_interval_ns));
                self.sampled_channel_busy_ns = self.channel_busy_ns;
                self.sampled_die_busy_ns = self.die_busy_ns;
                self.sampled_gc_stall_ns = self.diag_gc_stall_ns;
                return;
            }
            let t = self.next_sample_at;
            let channels = self.channel_free.len().max(1) as u64;
            let dies = self.die_free.len().max(1) as u64;
            let ch_window = (self.sample_interval_ns * channels).max(1) as f64;
            let die_window = (self.sample_interval_ns * dies).max(1) as f64;
            let flash_stats = self.flash.stats();
            let denom_reads = self.cache_read_hits + self.cache_read_misses;
            let denom_cmt = self.cmt_hits + self.cmt_misses;
            let sample = DeviceSample {
                t_ns: t,
                channel_busy: ((self.channel_busy_ns - self.sampled_channel_busy_ns) as f64
                    / ch_window)
                    .min(1.0),
                plane_busy: ((self.die_busy_ns - self.sampled_die_busy_ns) as f64 / die_window)
                    .min(1.0),
                gc_activity: ((self.diag_gc_stall_ns - self.sampled_gc_stall_ns) as f64
                    / die_window)
                    .min(1.0),
                queue_depth,
                data_cache_occupancy: self.data_cache.occupancy(),
                data_cache_hit_rate: if denom_reads > 0 {
                    self.cache_read_hits as f64 / denom_reads as f64
                } else {
                    0.0
                },
                cmt_occupancy: self.cmt.occupancy(),
                cmt_hit_rate: if denom_cmt > 0 {
                    self.cmt_hits as f64 / denom_cmt as f64
                } else {
                    0.0
                },
                gc_backlog_pages: self.flash.gc_backlog_pages(),
                write_amplification: if self.host_page_writes > 0 {
                    (flash_stats.programs
                        + flash_stats.migrated_pages
                        + flash_stats.slc_migrated_pages) as f64
                        / self.host_page_writes as f64
                } else {
                    0.0
                },
            };
            self.sampled_channel_busy_ns = self.channel_busy_ns;
            self.sampled_die_busy_ns = self.die_busy_ns;
            self.sampled_gc_stall_ns = self.diag_gc_stall_ns;
            self.series.push_bounded(self.sample_cap, sample);
            self.next_sample_at = t.saturating_add(self.sample_interval_ns);
            if self.next_sample_at == u64::MAX {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FlashTechnology, Interface};
    use iotrace::gen::WorkloadKind;
    use iotrace::TraceEvent;

    fn run_with(cfg: SsdConfig, kind: WorkloadKind, n: usize) -> SimReport {
        let trace = kind.spec().generate(n, 42);
        let mut sim = Simulator::new(cfg);
        sim.warm_up(0.5);
        sim.run(&trace)
    }

    #[test]
    fn produces_sane_report() {
        let r = run_with(SsdConfig::default(), WorkloadKind::Database, 2_000);
        assert!(r.latency.mean_ns > 1_000.0, "{}", r.latency.mean_ns);
        assert!(r.latency.p99_ns >= r.latency.p50_ns);
        assert!(r.throughput_bps > 0.0);
        assert!(r.energy.total_mj() > 0.0);
        assert_eq!(r.latency.count, 2_000);
    }

    #[test]
    fn more_channels_improve_intensive_workload() {
        let narrow = SsdConfig {
            channel_count: 2,
            ..SsdConfig::default()
        };
        let wide = SsdConfig {
            channel_count: 32,
            ..SsdConfig::default()
        };
        let rn = run_with(narrow, WorkloadKind::CloudStorage, 3_000);
        let rw = run_with(wide, WorkloadKind::CloudStorage, 3_000);
        assert!(
            rw.latency.mean_ns < rn.latency.mean_ns,
            "wide {} vs narrow {}",
            rw.latency.mean_ns,
            rn.latency.mean_ns
        );
    }

    #[test]
    fn slc_beats_tlc_on_latency() {
        let slc = SsdConfig {
            flash_technology: FlashTechnology::Slc,
            read_latency_ns: FlashTechnology::Slc.base_read_ns(),
            program_latency_ns: FlashTechnology::Slc.base_program_ns(),
            erase_latency_ns: FlashTechnology::Slc.base_erase_ns(),
            ..SsdConfig::default()
        };
        let tlc = SsdConfig {
            flash_technology: FlashTechnology::Tlc,
            read_latency_ns: FlashTechnology::Tlc.base_read_ns(),
            program_latency_ns: FlashTechnology::Tlc.base_program_ns(),
            erase_latency_ns: FlashTechnology::Tlc.base_erase_ns(),
            ..SsdConfig::default()
        };
        let rs = run_with(slc, WorkloadKind::WebSearch, 2_000);
        let rt = run_with(tlc, WorkloadKind::WebSearch, 2_000);
        assert!(rs.latency.mean_ns < rt.latency.mean_ns);
    }

    #[test]
    fn bigger_data_cache_raises_hit_rate() {
        let small = SsdConfig {
            data_cache_mb: 16,
            ..SsdConfig::default()
        };
        let big = SsdConfig {
            data_cache_mb: 2048,
            ..SsdConfig::default()
        };
        let rs = run_with(small, WorkloadKind::Recomm, 4_000);
        let rb = run_with(big, WorkloadKind::Recomm, 4_000);
        assert!(rb.read_cache_hit_rate >= rs.read_cache_hit_rate);
    }

    #[test]
    fn sata_slower_than_nvme_for_throughput_workload() {
        let nvme = SsdConfig::default();
        let sata = SsdConfig {
            interface: Interface::Sata,
            ..SsdConfig::default()
        };
        let rn = run_with(nvme, WorkloadKind::BatchAnalytics, 2_000);
        let rs = run_with(sata, WorkloadKind::BatchAnalytics, 2_000);
        assert!(rn.throughput_bps > rs.throughput_bps);
    }

    #[test]
    fn write_back_hides_program_latency() {
        let wb = SsdConfig {
            cache_mode: CacheMode::WriteBack,
            ..SsdConfig::default()
        };
        let wt = SsdConfig {
            cache_mode: CacheMode::WriteThrough,
            ..SsdConfig::default()
        };
        let rb = run_with(wb, WorkloadKind::Fiu, 2_000);
        let rt = run_with(wt, WorkloadKind::Fiu, 2_000);
        assert!(rb.write_latency.mean_ns < rt.write_latency.mean_ns);
    }

    #[test]
    fn writes_generate_programs_and_wa() {
        let r = run_with(SsdConfig::default(), WorkloadKind::Fiu, 3_000);
        assert!(r.flash.programs > 0);
        assert!(r.write_amplification >= 0.0);
    }

    #[test]
    fn deterministic_runs() {
        let a = run_with(SsdConfig::default(), WorkloadKind::KvStore, 1_000);
        let b = run_with(SsdConfig::default(), WorkloadKind::KvStore, 1_000);
        assert_eq!(a, b);
    }

    #[test]
    fn hybrid_attributes_slc_migration() {
        // Small geometry so a short write-heavy trace cycles the cache tier.
        let cfg = SsdConfig {
            channel_count: 2,
            chips_per_channel: 1,
            dies_per_chip: 1,
            planes_per_die: 1,
            blocks_per_plane: 32,
            pages_per_block: 32,
            ..crate::config::presets::hybrid_slc_qlc()
        };
        let r = run_with(cfg, WorkloadKind::Fiu, 3_000);
        assert!(
            r.flash.slc_migrated_pages > 0,
            "write-heavy trace must fold"
        );
        assert!(
            r.bottleneck.slc_migration_ns > 0,
            "migration stalls must be attributed"
        );
        assert!((0.0..=1.0).contains(&r.bottleneck.slc_migration_frac));
    }

    #[test]
    fn hybrid_runs_deterministic() {
        let a = run_with(
            crate::config::presets::hybrid_slc_qlc(),
            WorkloadKind::Fiu,
            1_500,
        );
        let b = run_with(
            crate::config::presets::hybrid_slc_qlc(),
            WorkloadKind::Fiu,
            1_500,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn hybrid_absorbs_writes_at_slc_latency() {
        // With write-through exposing program latency, the SLC cache tier
        // must beat a homogeneous QLC device on write latency.
        let qlc = SsdConfig {
            flash_technology: FlashTechnology::Qlc,
            read_latency_ns: FlashTechnology::Qlc.base_read_ns(),
            program_latency_ns: FlashTechnology::Qlc.base_program_ns(),
            erase_latency_ns: FlashTechnology::Qlc.base_erase_ns(),
            cache_mode: CacheMode::WriteThrough,
            ..SsdConfig::default()
        };
        let hybrid = SsdConfig {
            cache_mode: CacheMode::WriteThrough,
            ..crate::config::presets::hybrid_slc_qlc()
        };
        let rq = run_with(qlc, WorkloadKind::Fiu, 2_000);
        let rh = run_with(hybrid, WorkloadKind::Fiu, 2_000);
        assert!(
            rh.write_latency.mean_ns < rq.write_latency.mean_ns,
            "hybrid {} vs qlc {}",
            rh.write_latency.mean_ns,
            rq.write_latency.mean_ns
        );
    }

    #[test]
    fn empty_trace_yields_default_report() {
        let mut sim = Simulator::new(SsdConfig::default());
        let r = sim.run(&Trace::new("empty"));
        assert_eq!(r.latency.count, 0);
        assert_eq!(r.host_bytes, 0);
    }

    #[test]
    fn queue_depth_one_serializes() {
        let deep = SsdConfig {
            io_queue_depth: 64,
            queue_count: 8,
            ..SsdConfig::default()
        };
        let shallow = SsdConfig {
            io_queue_depth: 1,
            queue_count: 1,
            ..SsdConfig::default()
        };
        let rd = run_with(deep, WorkloadKind::Database, 2_000);
        let rs = run_with(shallow, WorkloadKind::Database, 2_000);
        // A shallow queue throttles admission: per-request latency drops
        // (no in-device queueing) but throughput collapses.
        assert!(rs.throughput_bps < rd.throughput_bps);
    }

    #[test]
    fn eviction_counters_and_histogram_populate() {
        let tight = SsdConfig {
            data_cache_mb: 1,
            cmt_capacity_mb: 1,
            ..SsdConfig::default()
        };
        let r = run_with(tight, WorkloadKind::CloudStorage, 4_000);
        assert_eq!(r.latency_buckets.total(), 4_000);
        assert!(
            r.data_cache_evictions > 0,
            "a 1 MiB data cache must evict under 4k requests"
        );
        // Evictions cannot outnumber insertions (misses fill the cache).
        assert!(r.data_cache_evictions <= r.latency.count * MAX_PAGES_PER_REQUEST);
    }

    #[test]
    fn single_large_request_spans_pages() {
        let mut sim = Simulator::new(SsdConfig::default());
        let mut t = Trace::new("one");
        t.push(TraceEvent::new(0, 0, 1 << 20, OpKind::Read)); // 1 MiB read
        let r = sim.run(&t);
        assert_eq!(r.latency.count, 1);
        assert!(r.flash.programs == 0);
        assert!(r.host_bytes == 1 << 20);
    }
}
