//! Analytic SSD power model.
//!
//! The paper extends MQSim with power profiling for three components: the
//! flash chips (per-operation energy, following the characterization of
//! Grupp et al.), the controller DRAM (a DRAMPower-style access+background
//! model), and the storage processor (a Gem5-style busy/idle ARM model).
//! This module reproduces that structure analytically: the simulator reports
//! operation counts and busy times, and the model converts them to energy.

use crate::config::{FlashTechnology, SsdConfig};
use serde::{Deserialize, Serialize};

/// Per-operation flash energy in nanojoules, scaled by technology and page
/// size (values normalized to a 4 KiB page).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashEnergy {
    /// Energy per page read, nJ.
    pub read_nj: f64,
    /// Energy per page program, nJ.
    pub program_nj: f64,
    /// Energy per block erase, nJ.
    pub erase_nj: f64,
    /// Idle power per die, mW.
    pub die_idle_mw: f64,
}

impl FlashEnergy {
    /// Energy table for a flash technology at a given page size.
    pub fn for_config(cfg: &SsdConfig) -> Self {
        let scale = f64::from(cfg.page_size_bytes) / 4096.0;
        let (read, program, erase) = match cfg.flash_technology {
            FlashTechnology::Slc => (6_000.0, 18_000.0, 150_000.0),
            FlashTechnology::Mlc => (15_000.0, 40_000.0, 250_000.0),
            FlashTechnology::Tlc => (25_000.0, 70_000.0, 350_000.0),
            FlashTechnology::Qlc => (35_000.0, 100_000.0, 450_000.0),
        };
        FlashEnergy {
            read_nj: read * scale,
            program_nj: program * scale,
            erase_nj: erase,
            die_idle_mw: 1.2,
        }
    }
}

/// Counters the simulator feeds into the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Flash page reads (host + mapping + migration reads).
    pub flash_reads: u64,
    /// Flash page programs.
    pub flash_programs: u64,
    /// Block erases.
    pub flash_erases: u64,
    /// Bytes moved through controller DRAM (cache hits, buffering).
    pub dram_bytes: u64,
    /// Nanoseconds the controller was busy processing commands.
    pub controller_busy_ns: u64,
    /// Wall-clock nanoseconds simulated.
    pub elapsed_ns: u64,
}

/// Energy breakdown in millijoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Flash array energy, mJ.
    pub flash_mj: f64,
    /// Controller DRAM energy, mJ.
    pub dram_mj: f64,
    /// Storage processor energy, mJ.
    pub controller_mj: f64,
}

impl EnergyReport {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.flash_mj + self.dram_mj + self.controller_mj
    }

    /// Average power draw in watts over `elapsed_ns`.
    pub fn average_power_w(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            return 0.0;
        }
        self.total_mj() / 1000.0 / (elapsed_ns as f64 / 1e9)
    }
}

/// Computes the energy consumed by a simulation run.
///
/// # Examples
///
/// ```
/// use ssdsim::config::SsdConfig;
/// use ssdsim::power::{compute_energy, ActivityCounters};
/// let cfg = SsdConfig::default();
/// let counters = ActivityCounters {
///     flash_reads: 1_000,
///     flash_programs: 100,
///     elapsed_ns: 1_000_000_000,
///     ..Default::default()
/// };
/// let report = compute_energy(&cfg, &counters);
/// assert!(report.total_mj() > 0.0);
/// ```
pub fn compute_energy(cfg: &SsdConfig, counters: &ActivityCounters) -> EnergyReport {
    let fe = FlashEnergy::for_config(cfg);
    let elapsed_s = counters.elapsed_ns as f64 / 1e9;

    // Flash: per-op energy plus die idle draw.
    let op_nj = counters.flash_reads as f64 * fe.read_nj
        + counters.flash_programs as f64 * fe.program_nj
        + counters.flash_erases as f64 * fe.erase_nj;
    let idle_mj = fe.die_idle_mw * cfg.total_dies() as f64 * elapsed_s;
    let flash_mj = op_nj / 1e6 + idle_mj;

    // DRAM: access energy (~0.05 nJ/byte at DDR3-class rates, scaled
    // inversely with data rate) + background power proportional to capacity.
    let rate_scale = 1600.0 / f64::from(cfg.dram_data_rate_mts.max(200));
    let access_mj = counters.dram_bytes as f64 * 0.05 * rate_scale / 1e6;
    let dram_capacity_gb = f64::from(cfg.data_cache_mb + cfg.cmt_capacity_mb) / 1024.0;
    let background_mj = dram_capacity_gb * 180.0 * elapsed_s; // ~180 mW/GB
    let dram_mj = access_mj + background_mj;

    // Storage processor: busy vs idle ARM power (Gem5-style two-state
    // model; NVMe-class controller SoCs draw 1-2 W under load).
    let busy_s = (counters.controller_busy_ns as f64 / 1e9).min(elapsed_s);
    let idle_s = (elapsed_s - busy_s).max(0.0);
    let controller_mj = busy_s * 1_500.0 + idle_s * 150.0;

    EnergyReport {
        flash_mj,
        dram_mj,
        controller_mj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FlashTechnology;

    fn counters() -> ActivityCounters {
        ActivityCounters {
            flash_reads: 10_000,
            flash_programs: 5_000,
            flash_erases: 20,
            dram_bytes: 100 << 20,
            controller_busy_ns: 400_000_000,
            elapsed_ns: 1_000_000_000,
        }
    }

    #[test]
    fn energy_is_positive_and_additive() {
        let r = compute_energy(&SsdConfig::default(), &counters());
        assert!(r.flash_mj > 0.0);
        assert!(r.dram_mj > 0.0);
        assert!(r.controller_mj > 0.0);
        assert!((r.total_mj() - (r.flash_mj + r.dram_mj + r.controller_mj)).abs() < 1e-9);
    }

    #[test]
    fn tlc_costs_more_than_slc_per_op() {
        let slc = SsdConfig {
            flash_technology: FlashTechnology::Slc,
            ..SsdConfig::default()
        };
        let tlc = SsdConfig {
            flash_technology: FlashTechnology::Tlc,
            ..SsdConfig::default()
        };
        let es = FlashEnergy::for_config(&slc);
        let et = FlashEnergy::for_config(&tlc);
        assert!(et.read_nj > es.read_nj);
        assert!(et.program_nj > es.program_nj);
    }

    #[test]
    fn more_dies_draw_more_idle_power() {
        let small = SsdConfig::default();
        let big = SsdConfig {
            channel_count: small.channel_count * 4,
            ..SsdConfig::default()
        };
        let idle = ActivityCounters {
            elapsed_ns: 1_000_000_000,
            ..Default::default()
        };
        let rs = compute_energy(&small, &idle);
        let rb = compute_energy(&big, &idle);
        assert!(rb.flash_mj > rs.flash_mj);
    }

    #[test]
    fn larger_cache_draws_more_background_power() {
        let small = SsdConfig {
            data_cache_mb: 128,
            ..SsdConfig::default()
        };
        let big = SsdConfig {
            data_cache_mb: 2048,
            ..SsdConfig::default()
        };
        let idle = ActivityCounters {
            elapsed_ns: 1_000_000_000,
            ..Default::default()
        };
        assert!(compute_energy(&big, &idle).dram_mj > compute_energy(&small, &idle).dram_mj);
    }

    #[test]
    fn average_power_sane() {
        let r = compute_energy(&SsdConfig::default(), &counters());
        let w = r.average_power_w(1_000_000_000);
        // Commodity SSDs draw single-digit watts.
        assert!(w > 0.1 && w < 50.0, "{w} W");
        assert_eq!(r.average_power_w(0), 0.0);
    }

    #[test]
    fn page_size_scales_op_energy() {
        let p4k = FlashEnergy::for_config(&SsdConfig::default());
        let p8k = FlashEnergy::for_config(&SsdConfig {
            page_size_bytes: 8192,
            ..SsdConfig::default()
        });
        assert!((p8k.read_nj / p4k.read_nj - 2.0).abs() < 1e-9);
    }
}
