//! # ssdsim — an event-driven multi-queue SSD simulator
//!
//! The validation substrate of the AutoBlox reproduction, standing in for
//! MQSim (Tavakkol et al., FAST'18), the simulator the paper extends. The
//! crate models:
//!
//! - [`config`]: the full SSD hardware configuration (flash layout, timing,
//!   controller DRAM, FTL policies, host interface) plus the commodity
//!   baselines the paper compares against ([`config::presets`]);
//! - [`flash`]: physical flash state — planes, blocks, valid-page counts,
//!   write striping per plane-allocation scheme, garbage collection, and
//!   static wear leveling;
//! - [`lru`]: the LRU structure backing the data cache and the cached
//!   mapping table;
//! - [`sim`]: the simulator that drives a block I/O [`iotrace::Trace`]
//!   through host interface → FTL → flash back end;
//! - [`observe`]: the device observatory — bounded time-series sampling of
//!   channel/die utilization, caches, queue depth, and GC pressure, plus
//!   per-run bottleneck attribution ([`observe::BottleneckReport`]);
//! - [`power`]: the flash/DRAM/controller energy model the paper adds to
//!   MQSim;
//! - [`report`]: latency/throughput/energy results.
//!
//! # Examples
//!
//! ```
//! use iotrace::gen::WorkloadKind;
//! use ssdsim::config::SsdConfig;
//! use ssdsim::sim::Simulator;
//!
//! let trace = WorkloadKind::WebSearch.spec().generate(1_000, 7);
//! let mut sim = Simulator::new(SsdConfig::default());
//! sim.warm_up(0.5);
//! let report = sim.run(&trace);
//! println!("mean latency: {:.1} us", report.mean_latency_us());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod flash;
pub mod lru;
pub mod observe;
pub mod power;
pub mod report;
pub mod sim;

pub use config::{FlashTechnology, Interface, SsdConfig};
pub use observe::{BottleneckReport, DeviceSample, DeviceSeries, LaneReport, TenantLanes};
pub use report::SimReport;
pub use sim::{RunScratch, Simulator};
