//! A compact O(1) LRU cache over `u64` keys with dirty-bit tracking, used
//! for both the controller data cache and the cached mapping table (CMT).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node {
    key: u64,
    dirty: bool,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU set of `u64` keys with per-entry dirty bits.
///
/// # Examples
///
/// ```
/// use ssdsim::lru::LruCache;
/// let mut c = LruCache::new(2);
/// assert!(c.insert(1, false).is_none());
/// assert!(c.insert(2, false).is_none());
/// c.touch(1);                       // 1 becomes most recent
/// let evicted = c.insert(3, false); // evicts 2
/// assert_eq!(evicted, Some((2, false)));
/// assert!(c.contains(1));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    map: HashMap<u64, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    dirty_len: usize,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` keys.
    ///
    /// A zero capacity is allowed and produces a cache that never retains
    /// anything (every insert immediately reports the inserted key back as
    /// evicted — callers treat this as a bypass).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            dirty_len: 0,
        }
    }

    /// Maximum number of keys retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of cached keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of cached keys currently marked dirty.
    pub fn dirty_len(&self) -> usize {
        self.dirty_len
    }

    /// Fill fraction, `len / capacity` (0.0 for a zero-capacity cache).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.map.len() as f64 / self.capacity as f64
        }
    }

    /// Removes and returns the least-recently-used `(key, dirty)` entry.
    pub fn pop_lru(&mut self) -> Option<(u64, bool)> {
        if self.tail == NIL {
            return None;
        }
        let tail = self.tail;
        let node = self.nodes[tail].clone();
        self.unlink(tail);
        self.map.remove(&node.key);
        self.free.push(tail);
        if node.dirty {
            self.dirty_len -= 1;
        }
        Some((node.key, node.dirty))
    }

    /// `true` if `key` is cached (does not update recency).
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(&key)
    }

    /// Marks `key` most recently used; returns `true` if it was present.
    pub fn touch(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            self.unlink(idx);
            self.push_front(idx);
            true
        } else {
            false
        }
    }

    /// `true` if `key` is cached and marked dirty.
    pub fn is_dirty(&self, key: u64) -> bool {
        self.map.get(&key).is_some_and(|&idx| self.nodes[idx].dirty)
    }

    /// Clears the dirty bit of a cached key; returns `false` if absent.
    pub fn mark_clean(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            if self.nodes[idx].dirty {
                self.nodes[idx].dirty = false;
                self.dirty_len -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Sets the dirty bit of a cached key; returns `false` if absent.
    pub fn mark_dirty(&mut self, key: u64) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            if !self.nodes[idx].dirty {
                self.nodes[idx].dirty = true;
                self.dirty_len += 1;
            }
            true
        } else {
            false
        }
    }

    /// Inserts `key` as most recently used, returning the evicted
    /// `(key, dirty)` pair if the cache was full.
    ///
    /// Inserting an existing key refreshes its recency and ORs the dirty
    /// bit; no eviction happens in that case.
    pub fn insert(&mut self, key: u64, dirty: bool) -> Option<(u64, bool)> {
        if self.capacity == 0 {
            return Some((key, dirty));
        }
        if let Some(&idx) = self.map.get(&key) {
            if dirty && !self.nodes[idx].dirty {
                self.nodes[idx].dirty = true;
                self.dirty_len += 1;
            }
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let evicted = if self.map.len() >= self.capacity {
            let tail = self.tail;
            let node = self.nodes[tail].clone();
            self.unlink(tail);
            self.map.remove(&node.key);
            self.free.push(tail);
            if node.dirty {
                self.dirty_len -= 1;
            }
            Some((node.key, node.dirty))
        } else {
            None
        };
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = Node {
                key,
                dirty,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                key,
                dirty,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        if dirty {
            self.dirty_len += 1;
        }
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes `key`, returning its dirty bit if it was present.
    pub fn remove(&mut self, key: u64) -> Option<bool> {
        let idx = self.map.remove(&key)?;
        self.unlink(idx);
        self.free.push(idx);
        if self.nodes[idx].dirty {
            self.dirty_len -= 1;
        }
        Some(self.nodes[idx].dirty)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(3);
        c.insert(1, false);
        c.insert(2, false);
        c.insert(3, false);
        assert_eq!(c.insert(4, false), Some((1, false)));
        assert!(!c.contains(1));
        assert!(c.contains(4));
    }

    #[test]
    fn touch_changes_eviction_order() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        assert!(c.touch(1));
        assert_eq!(c.insert(3, false), Some((2, false)));
        assert!(!c.touch(99));
    }

    #[test]
    fn dirty_bit_propagates_on_eviction() {
        let mut c = LruCache::new(1);
        c.insert(7, false);
        assert!(c.mark_dirty(7));
        assert_eq!(c.insert(8, false), Some((7, true)));
        assert!(!c.mark_dirty(7));
    }

    #[test]
    fn reinsert_refreshes_and_ors_dirty() {
        let mut c = LruCache::new(2);
        c.insert(1, false);
        c.insert(2, false);
        assert_eq!(c.insert(1, true), None); // refresh, no eviction
        assert_eq!(c.insert(3, false), Some((2, false)));
        assert_eq!(c.insert(4, false), Some((1, true)));
    }

    #[test]
    fn remove_frees_slot() {
        let mut c = LruCache::new(2);
        c.insert(1, true);
        assert_eq!(c.remove(1), Some(true));
        assert_eq!(c.remove(1), None);
        assert!(c.is_empty());
        c.insert(2, false);
        c.insert(3, false);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn zero_capacity_bypasses() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(5, true), Some((5, true)));
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn dirty_len_tracks_transitions() {
        let mut c = LruCache::new(3);
        c.insert(1, true);
        c.insert(2, false);
        assert_eq!(c.dirty_len(), 1);
        c.mark_dirty(2);
        c.mark_dirty(2); // idempotent
        assert_eq!(c.dirty_len(), 2);
        c.insert(1, true); // already dirty, no double count
        assert_eq!(c.dirty_len(), 2);
        assert_eq!(c.remove(1), Some(true));
        assert_eq!(c.dirty_len(), 1);
        c.insert(3, false);
        c.insert(4, false);
        // Evicting dirty 2 decrements.
        c.insert(5, false);
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn mark_clean_and_is_dirty() {
        let mut c = LruCache::new(2);
        c.insert(1, true);
        assert!(c.is_dirty(1));
        assert!(c.mark_clean(1));
        assert!(!c.is_dirty(1));
        assert_eq!(c.dirty_len(), 0);
        assert!(c.mark_clean(1)); // idempotent on clean entries
        assert!(!c.mark_clean(9));
        assert!(!c.is_dirty(9));
    }

    #[test]
    fn pop_lru_returns_oldest() {
        let mut c = LruCache::new(3);
        c.insert(1, true);
        c.insert(2, false);
        c.insert(3, false);
        c.touch(1);
        assert_eq!(c.pop_lru(), Some((2, false)));
        assert_eq!(c.pop_lru(), Some((3, false)));
        assert_eq!(c.pop_lru(), Some((1, true)));
        assert_eq!(c.pop_lru(), None);
        assert_eq!(c.dirty_len(), 0);
    }

    #[test]
    fn stress_against_reference_model() {
        // Differential test against a naive Vec-based LRU.
        let mut c = LruCache::new(4);
        let mut model: Vec<u64> = Vec::new(); // front = most recent
        let mut x: u64 = 0x12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 10;
            let evicted = c.insert(key, false);
            if let Some(pos) = model.iter().position(|&k| k == key) {
                model.remove(pos);
                model.insert(0, key);
                assert_eq!(evicted, None);
            } else {
                model.insert(0, key);
                if model.len() > 4 {
                    let out = model.pop().unwrap();
                    assert_eq!(evicted, Some((out, false)));
                } else {
                    assert_eq!(evicted, None);
                }
            }
            assert_eq!(c.len(), model.len());
            for &k in &model {
                assert!(c.contains(k));
            }
        }
    }
}
