//! Property-based tests for the flash array and the simulator: allocation
//! must conserve pages, GC must reclaim what it erases, and the simulator
//! must stay internally consistent for arbitrary configurations.

use proptest::prelude::*;
use ssdsim::config::{
    DeviceFamily, FlashTechnology, GcPolicy, MigrationPolicy, PlaneAllocationScheme, SsdConfig,
};
use ssdsim::flash::{pseudo_location, FlashArray};
use ssdsim::BottleneckReport;

fn arb_layout() -> impl Strategy<Value = SsdConfig> {
    (
        1u32..=4,
        1u32..=3,
        1u32..=2,
        prop::sample::select(vec![1u32, 2, 4]),
        prop::sample::select(vec![8u32, 16, 32]),
        prop::sample::select(vec![8u32, 16, 32]),
        0usize..16,
        prop::bool::ANY,
    )
        .prop_map(
            |(ch, chips, dies, planes, blocks, pages, scheme, greedy)| SsdConfig {
                channel_count: ch,
                chips_per_channel: chips,
                dies_per_chip: dies,
                planes_per_die: planes,
                blocks_per_plane: blocks,
                pages_per_block: pages,
                plane_allocation_scheme: PlaneAllocationScheme::ALL[scheme],
                gc_policy: if greedy {
                    GcPolicy::Greedy
                } else {
                    GcPolicy::Random
                },
                gc_threshold: 0.2,
                gc_hard_threshold: 0.01,
                ..SsdConfig::default()
            },
        )
}

fn arb_hybrid_layout() -> impl Strategy<Value = SsdConfig> {
    (arb_layout(), 5.0f64..=40.0, 10.0f64..=80.0, prop::bool::ANY).prop_map(
        |(cfg, cache_pct, threshold_pct, watermark)| SsdConfig {
            flash_technology: FlashTechnology::Qlc,
            device_family: DeviceFamily::HybridSlcCache {
                cache_blocks_pct: cache_pct,
                migration_policy: if watermark {
                    MigrationPolicy::Watermark
                } else {
                    MigrationPolicy::Idle
                },
                migration_threshold_pct: threshold_pct,
            },
            ..cfg
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn striping_cycles_through_every_plane(cfg in arb_layout()) {
        let mut fa = FlashArray::new(&cfg);
        let total = cfg.total_planes();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..total {
            let p = fa.next_write_plane();
            prop_assert!(u64::from(p) < total);
            seen.insert(p);
        }
        // One full cycle touches every plane exactly once.
        prop_assert_eq!(seen.len() as u64, total);
    }

    #[test]
    fn programs_conserve_page_accounting(cfg in arb_layout(), writes in 1usize..300) {
        let mut fa = FlashArray::new(&cfg);
        let before: u64 = (0..cfg.total_planes() as u32).map(|p| fa.free_pages(p)).sum();
        let mut programmed = 0u64;
        for _ in 0..writes {
            let plane = fa.next_write_plane();
            let (block, _page, _ops) = fa.program_page(plane);
            fa.invalidate(plane, block);
            programmed += 1;
        }
        let after: u64 = (0..cfg.total_planes() as u32).map(|p| fa.free_pages(p)).sum();
        let stats = fa.stats();
        // free_before - free_after = programs (host + migrations) - reclaimed.
        let reclaimed = stats.erases * u64::from(cfg.pages_per_block);
        let consumed = stats.programs + stats.migrated_pages;
        prop_assert_eq!(before + reclaimed, after + consumed);
        prop_assert_eq!(stats.programs, programmed);
    }

    #[test]
    fn sustained_overwrites_never_exhaust_the_device(cfg in arb_layout()) {
        let mut fa = FlashArray::new(&cfg);
        fa.warm_up(0.5);
        // Overwrite forever on plane 0: GC must keep the device alive.
        let churn = cfg.pages_per_plane() * 3;
        for i in 0..churn {
            let (block, _page, _ops) = fa.program_page(0);
            if i % 2 == 0 {
                fa.invalidate(0, block);
            } else {
                fa.invalidate_somewhere(0, i);
            }
        }
        prop_assert!(fa.stats().erases > 0);
        prop_assert!(fa.free_pages(0) <= cfg.pages_per_plane());
    }

    #[test]
    fn hybrid_migration_conserves_pages(cfg in arb_hybrid_layout(), writes in 1usize..400) {
        let mut fa = FlashArray::new(&cfg);
        let ppb = u64::from(cfg.pages_per_block);
        let cache_pages = u64::from(fa.slc_cache_blocks()) * ppb;
        let capacity_pages = cfg.pages_per_plane() - cache_pages;
        prop_assert!(fa.slc_cache_blocks() >= 1);
        for i in 0..writes {
            let plane = fa.next_write_plane();
            let (block, _page, _ops) = fa.program_page(plane);
            if i % 3 == 0 {
                fa.invalidate(plane, block);
            }
        }
        let stats = fa.stats();
        // Tier accounting is exact: every page the array consumed is either
        // still free, was reclaimed by an erase, or was paid for by a host
        // program, a GC migration, or an SLC fold.
        let free: u64 = (0..cfg.total_planes() as u32)
            .map(|p| fa.free_pages(p) + fa.cache_free_pages(p))
            .sum();
        let reclaimed = stats.erases * ppb;
        let consumed = stats.programs + stats.migrated_pages + stats.slc_migrated_pages;
        prop_assert_eq!(cfg.pages_per_plane() * cfg.total_planes() + reclaimed, free + consumed);
        for p in 0..cfg.total_planes() as u32 {
            // Neither tier can ever exceed its physical size.
            prop_assert!(fa.valid_pages(p) <= cfg.pages_per_plane());
            prop_assert!(fa.free_pages(p) <= capacity_pages);
            prop_assert!(fa.cache_free_pages(p) <= cache_pages);
        }
    }

    #[test]
    fn hybrid_survives_sustained_overwrites(cfg in arb_hybrid_layout()) {
        let mut fa = FlashArray::new(&cfg);
        fa.warm_up(0.5);
        let churn = cfg.pages_per_plane() * 3;
        for i in 0..churn {
            let (block, _page, _ops) = fa.program_page(0);
            if i % 2 == 0 {
                fa.invalidate(0, block);
            } else {
                fa.invalidate_somewhere(0, i);
            }
        }
        let stats = fa.stats();
        prop_assert!(stats.slc_migrated_pages > 0, "sustained writes must fold cache blocks");
        prop_assert!(stats.erases > 0);
        let cache_pages = u64::from(fa.slc_cache_blocks()) * u64::from(cfg.pages_per_block);
        prop_assert!(fa.cache_free_pages(0) <= cache_pages);
        prop_assert!(fa.free_pages(0) <= cfg.pages_per_plane() - cache_pages);
        prop_assert!(fa.valid_pages(0) <= cfg.pages_per_plane());
    }

    #[test]
    fn pseudo_locations_are_valid_and_deterministic(cfg in arb_layout(), lpns in prop::collection::vec(0u64..1_000_000, 1..50)) {
        for &lpn in &lpns {
            let a = pseudo_location(&cfg, lpn);
            prop_assert_eq!(a, pseudo_location(&cfg, lpn));
            prop_assert!(a.channel < cfg.channel_count);
            prop_assert!(a.chip < cfg.chips_per_channel);
            prop_assert!(a.die < cfg.dies_per_chip);
            prop_assert!(a.plane < cfg.planes_per_die);
            prop_assert!(a.block < cfg.blocks_per_plane);
            prop_assert!(a.page < cfg.pages_per_block);
            prop_assert!(u64::from(a.plane_index(&cfg)) < cfg.total_planes());
        }
    }

    #[test]
    fn bottleneck_fractions_stay_normalized(
        total in 0u64..u64::MAX / 8,
        channel in 0u64..u64::MAX / 8,
        plane in 0u64..u64::MAX / 8,
        gc in 0u64..u64::MAX / 8,
        cache in 0u64..u64::MAX / 8,
        queue in 0u64..u64::MAX / 8,
        slc in 0u64..u64::MAX / 8,
    ) {
        let report = BottleneckReport::from_totals(total, channel, plane, gc, cache, queue, slc);
        let mut sum = 0.0f64;
        for (name, frac) in report.fractions() {
            prop_assert!((0.0..=1.0).contains(&frac), "{name} = {frac} out of range");
            sum += frac;
        }
        prop_assert!((0.0..=1.0).contains(&report.other_frac), "other = {} out of range", report.other_frac);
        sum += report.other_frac;
        // The attributed fractions can never explain more than 100% of
        // the observed latency; `other` absorbs exactly the remainder.
        prop_assert!(sum <= 1.0 + 1e-9, "fractions sum to {sum}");
        if total > 0 {
            prop_assert!(sum >= 1.0 - 1e-9, "with latency observed, shares must cover it (sum = {sum})");
        }
        prop_assert!(!report.dominant().is_empty());
    }

    #[test]
    fn derived_quantities_are_consistent(cfg in arb_layout()) {
        prop_assert_eq!(
            cfg.physical_capacity_bytes(),
            cfg.total_planes()
                * u64::from(cfg.blocks_per_plane)
                * u64::from(cfg.pages_per_block)
                * u64::from(cfg.page_size_bytes)
        );
        prop_assert!(cfg.logical_capacity_bytes() <= cfg.physical_capacity_bytes());
        prop_assert_eq!(cfg.total_planes(), cfg.total_dies() * u64::from(cfg.planes_per_die));
        prop_assert!(cfg.channel_transfer_ns() > 0);
        prop_assert!(cfg.link_bandwidth_bps() > 0.0);
    }
}
