//! Error types shared across the toolkit.

use std::error::Error;
use std::fmt;

/// Error returned by the numerical routines in this crate.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
///
/// // A singular system has no Cholesky factorization.
/// let singular = Matrix::zeros(2, 2);
/// assert!(singular.cholesky().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// Operand shapes are incompatible (e.g. multiplying a 2x3 by a 2x3).
    ShapeMismatch {
        /// Shape of the left/first operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand, `(rows, cols)`.
        right: (usize, usize),
        /// Operation that was attempted.
        op: &'static str,
    },
    /// A matrix expected to be symmetric positive definite was not.
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input data set is empty or otherwise insufficient for the model.
    InsufficientData(String),
    /// A scalar argument is outside its legal domain.
    InvalidArgument(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MlError::NotPositiveDefinite => {
                write!(f, "matrix is not symmetric positive definite")
            }
            MlError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            MlError::InsufficientData(msg) => write!(f, "insufficient data: {msg}"),
            MlError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for MlError {}

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = MlError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matmul: left is 2x3, right is 4x5"
        );
    }

    #[test]
    fn display_other_variants() {
        assert!(MlError::NotPositiveDefinite
            .to_string()
            .contains("positive definite"));
        assert!(MlError::NoConvergence { iterations: 7 }
            .to_string()
            .contains('7'));
        assert!(MlError::InsufficientData("empty".into())
            .to_string()
            .contains("empty"));
        assert!(MlError::InvalidArgument("k=0".into())
            .to_string()
            .contains("k=0"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
