//! k-means clustering with k-means++ initialization, used by AutoBlox to
//! group storage workloads by their PCA-reduced access-pattern features.

use crate::error::{MlError, Result};
use crate::linalg::{sq_dist, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A fitted k-means model.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// use mlkit::kmeans::KMeans;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],
///     vec![9.0, 9.0], vec![9.1, 9.0], vec![9.0, 9.1],
/// ]);
/// let km = KMeans::fit(&x, 2, 42)?;
/// let a = km.predict_row(&[0.05, 0.05])?;
/// let b = km.predict_row(&[9.05, 9.05])?;
/// assert_ne!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids as rows.
    centroids: Matrix,
    inertia: f64,
    iterations: usize,
}

impl KMeans {
    /// Runs k-means++ initialization followed by Lloyd iterations.
    ///
    /// `seed` makes the run deterministic.
    ///
    /// # Errors
    ///
    /// - [`MlError::InvalidArgument`] if `k` is zero;
    /// - [`MlError::InsufficientData`] if there are fewer samples than `k`.
    pub fn fit(x: &Matrix, k: usize, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(MlError::InvalidArgument("k must be positive".into()));
        }
        if x.rows() < k {
            return Err(MlError::InsufficientData(format!(
                "k-means with k={k} needs at least {k} samples, got {}",
                x.rows()
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut centroids = Self::plus_plus_init(x, k, &mut rng);
        let mut assignment = vec![0usize; x.rows()];
        let max_iter = 300;
        let mut iterations = 0;
        for it in 0..max_iter {
            iterations = it + 1;
            // Assignment step.
            let mut changed = false;
            for (r, slot) in assignment.iter_mut().enumerate() {
                let (best, _) = Self::nearest(&centroids, x.row(r));
                if *slot != best {
                    *slot = best;
                    changed = true;
                }
            }
            if !changed && it > 0 {
                break;
            }
            // Update step.
            let d = x.cols();
            let mut sums = vec![vec![0.0; d]; k];
            let mut counts = vec![0usize; k];
            for r in 0..x.rows() {
                counts[assignment[r]] += 1;
                for c in 0..d {
                    sums[assignment[r]][c] += x[(r, c)];
                }
            }
            for (ci, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
                if count == 0 {
                    // Re-seed an empty cluster at the point farthest from its
                    // centroid to avoid dead clusters.
                    let far = (0..x.rows())
                        .max_by(|&a, &b| {
                            let da = sq_dist(x.row(a), centroids.row(assignment[a]));
                            let db = sq_dist(x.row(b), centroids.row(assignment[b]));
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .expect("nonempty data");
                    for c in 0..d {
                        centroids[(ci, c)] = x[(far, c)];
                    }
                } else {
                    for c in 0..d {
                        centroids[(ci, c)] = sum[c] / count as f64;
                    }
                }
            }
        }
        let inertia = (0..x.rows())
            .map(|r| Self::nearest(&centroids, x.row(r)).1)
            .sum();
        Ok(KMeans {
            centroids,
            inertia,
            iterations,
        })
    }

    fn plus_plus_init(x: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
        let n = x.rows();
        let d = x.cols();
        let mut centroids = Matrix::zeros(k, d);
        let first = rng.gen_range(0..n);
        for c in 0..d {
            centroids[(0, c)] = x[(first, c)];
        }
        let mut dist2: Vec<f64> = (0..n)
            .map(|r| sq_dist(x.row(r), centroids.row(0)))
            .collect();
        for ci in 1..k {
            let total: f64 = dist2.iter().sum();
            let pick = if total > 0.0 {
                let mut target = rng.gen::<f64>() * total;
                let mut chosen = n - 1;
                for (r, &w) in dist2.iter().enumerate() {
                    target -= w;
                    if target <= 0.0 {
                        chosen = r;
                        break;
                    }
                }
                chosen
            } else {
                rng.gen_range(0..n)
            };
            for c in 0..d {
                centroids[(ci, c)] = x[(pick, c)];
            }
            for (r, d) in dist2.iter_mut().enumerate() {
                let nd = sq_dist(x.row(r), centroids.row(ci));
                if nd < *d {
                    *d = nd;
                }
            }
        }
        centroids
    }

    fn nearest(centroids: &Matrix, p: &[f64]) -> (usize, f64) {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for ci in 0..centroids.rows() {
            let d = sq_dist(centroids.row(ci), p);
            if d < best_d {
                best_d = d;
                best = ci;
            }
        }
        (best, best_d)
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Cluster centroids as rows of a `(k, n_features)` matrix.
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Final sum of squared distances of samples to their centroid.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations performed during fitting.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Assigns each row of `x` to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<usize>> {
        if x.cols() != self.centroids.cols() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: self.centroids.shape(),
                op: "kmeans_predict",
            });
        }
        Ok((0..x.rows())
            .map(|r| Self::nearest(&self.centroids, x.row(r)).0)
            .collect())
    }

    /// Assigns one point to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on dimension mismatch.
    pub fn predict_row(&self, p: &[f64]) -> Result<usize> {
        if p.len() != self.centroids.cols() {
            return Err(MlError::ShapeMismatch {
                left: (1, p.len()),
                right: self.centroids.shape(),
                op: "kmeans_predict_row",
            });
        }
        Ok(Self::nearest(&self.centroids, p).0)
    }

    /// Euclidean distance from `p` to its nearest centroid.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on dimension mismatch.
    pub fn distance_to_nearest(&self, p: &[f64]) -> Result<f64> {
        if p.len() != self.centroids.cols() {
            return Err(MlError::ShapeMismatch {
                left: (1, p.len()),
                right: self.centroids.shape(),
                op: "kmeans_distance",
            });
        }
        Ok(Self::nearest(&self.centroids, p).1.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, -0.1],
            vec![-0.1, 0.15],
            vec![0.05, 0.05],
            vec![10.0, 10.0],
            vec![10.2, 9.9],
            vec![9.9, 10.1],
            vec![10.05, 10.05],
        ])
    }

    #[test]
    fn separates_two_blobs() {
        let x = two_blobs();
        let km = KMeans::fit(&x, 2, 7).unwrap();
        let labels = km.predict(&x).unwrap();
        // First four samples share a label, last four share the other.
        assert!(labels[..4].iter().all(|&l| l == labels[0]));
        assert!(labels[4..].iter().all(|&l| l == labels[4]));
        assert_ne!(labels[0], labels[4]);
    }

    #[test]
    fn deterministic_given_seed() {
        let x = two_blobs();
        let a = KMeans::fit(&x, 2, 123).unwrap();
        let b = KMeans::fit(&x, 2, 123).unwrap();
        assert_eq!(a.centroids(), b.centroids());
    }

    #[test]
    fn inertia_decreases_with_k() {
        let x = two_blobs();
        let k1 = KMeans::fit(&x, 1, 5).unwrap();
        let k2 = KMeans::fit(&x, 2, 5).unwrap();
        assert!(k2.inertia() < k1.inertia());
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let km = KMeans::fit(&x, 3, 1).unwrap();
        assert!(km.inertia() < 1e-18);
    }

    #[test]
    fn rejects_bad_arguments() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(KMeans::fit(&x, 0, 0).is_err());
        assert!(KMeans::fit(&x, 3, 0).is_err());
    }

    #[test]
    fn distance_to_nearest_is_zero_at_centroid() {
        let x = two_blobs();
        let km = KMeans::fit(&x, 2, 9).unwrap();
        let c0: Vec<f64> = km.centroids().row(0).to_vec();
        assert!(km.distance_to_nearest(&c0).unwrap() < 1e-12);
        assert!(km.distance_to_nearest(&[1.0]).is_err());
        assert!(km.predict(&Matrix::zeros(1, 3)).is_err());
        assert!(km.predict_row(&[1.0, 2.0, 3.0]).is_err());
    }
}
