//! Ridge (L2-regularized linear) regression, used by AutoBlox's fine-grained
//! parameter pruning (§3.3) to score the linear correlation between each SSD
//! parameter and storage performance.

use crate::error::{MlError, Result};
use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted ridge-regression model `y ≈ X w + b`.
///
/// Features and target are internally centered so the intercept is not
/// penalized, matching scikit-learn's `Ridge`.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// use mlkit::ridge::Ridge;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
/// let y = [1.0, 3.0, 5.0, 7.0]; // y = 2x + 1
/// let model = Ridge::fit(&x, &y, 1e-9)?;
/// assert!((model.coefficients()[0] - 2.0).abs() < 1e-5);
/// assert!((model.intercept() - 1.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ridge {
    coefficients: Vec<f64>,
    intercept: f64,
    alpha: f64,
}

impl Ridge {
    /// Fits the model with regularization strength `alpha >= 0` by solving
    /// the normal equations `(Xc^T Xc + alpha I) w = Xc^T yc`.
    ///
    /// # Errors
    ///
    /// - [`MlError::InvalidArgument`] if `alpha` is negative or not finite;
    /// - [`MlError::ShapeMismatch`] if `y.len() != x.rows()`;
    /// - [`MlError::InsufficientData`] if `x` is empty;
    /// - [`MlError::NotPositiveDefinite`] if the regularized Gram matrix is
    ///   singular (only possible with `alpha == 0`).
    pub fn fit(x: &Matrix, y: &[f64], alpha: f64) -> Result<Self> {
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(MlError::InvalidArgument(format!(
                "alpha must be finite and non-negative, got {alpha}"
            )));
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(MlError::InsufficientData(
                "ridge regression needs a non-empty design matrix".into(),
            ));
        }
        if y.len() != x.rows() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (y.len(), 1),
                op: "ridge_fit",
            });
        }
        let n = x.rows();
        let d = x.cols();
        let nf = n as f64;
        let mut x_mean = vec![0.0; d];
        for r in 0..n {
            for (c, m) in x_mean.iter_mut().enumerate() {
                *m += x[(r, c)];
            }
        }
        for m in &mut x_mean {
            *m /= nf;
        }
        let y_mean = y.iter().sum::<f64>() / nf;

        // Gram matrix of centered features + alpha on the diagonal.
        let mut gram = Matrix::zeros(d, d);
        let mut xty = vec![0.0; d];
        for r in 0..n {
            let yc = y[r] - y_mean;
            for i in 0..d {
                let xi = x[(r, i)] - x_mean[i];
                xty[i] += xi * yc;
                for j in i..d {
                    let xj = x[(r, j)] - x_mean[j];
                    gram[(i, j)] += xi * xj;
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                let v = gram[(i, j)];
                gram[(j, i)] = v;
            }
            gram[(i, i)] += alpha.max(1e-12);
        }
        let chol = gram.cholesky()?;
        let coefficients = chol.solve(&xty)?;
        let intercept = y_mean
            - coefficients
                .iter()
                .zip(&x_mean)
                .map(|(w, m)| w * m)
                .sum::<f64>();
        Ok(Ridge {
            coefficients,
            intercept,
            alpha,
        })
    }

    /// Learned weights, one per feature column.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Regularization strength the model was fitted with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Predicts the target for one feature row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on length mismatch.
    pub fn predict_row(&self, row: &[f64]) -> Result<f64> {
        if row.len() != self.coefficients.len() {
            return Err(MlError::ShapeMismatch {
                left: (1, row.len()),
                right: (1, self.coefficients.len()),
                op: "ridge_predict",
            });
        }
        Ok(self.intercept
            + row
                .iter()
                .zip(&self.coefficients)
                .map(|(x, w)| x * w)
                .sum::<f64>())
    }

    /// Predicts targets for every row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs.
    pub fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }

    /// Coefficient of determination R² on the given data.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on shape mismatch.
    pub fn score(&self, x: &Matrix, y: &[f64]) -> Result<f64> {
        if y.len() != x.rows() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (y.len(), 1),
                op: "ridge_score",
            });
        }
        let preds = self.predict(x)?;
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_res: f64 = preds.iter().zip(y).map(|(p, t)| (t - p).powi(2)).sum();
        let ss_tot: f64 = y.iter().map(|t| (t - mean).powi(2)).sum();
        if ss_tot == 0.0 {
            return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
        }
        Ok(1.0 - ss_res / ss_tot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_function() {
        // y = 3 x0 - 2 x1 + 5.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 2.0 * r[1] + 5.0).collect();
        let x = Matrix::from_rows(&rows);
        let m = Ridge::fit(&x, &y, 1e-8).unwrap();
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-4);
        assert!((m.coefficients()[1] + 2.0).abs() < 1e-4);
        assert!((m.intercept() - 5.0).abs() < 1e-3);
        assert!(m.score(&x, &y).unwrap() > 0.999999);
    }

    #[test]
    fn shrinkage_with_large_alpha() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let y = [0.0, 2.0, 4.0, 6.0];
        let loose = Ridge::fit(&x, &y, 1e-9).unwrap();
        let tight = Ridge::fit(&x, &y, 1e6).unwrap();
        assert!(tight.coefficients()[0].abs() < loose.coefficients()[0].abs());
        assert!(tight.coefficients()[0].abs() < 0.01);
    }

    #[test]
    fn constant_target_gives_zero_coefficients() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let y = [4.0, 4.0, 4.0];
        let m = Ridge::fit(&x, &y, 0.1).unwrap();
        assert!(m.coefficients()[0].abs() < 1e-9);
        assert!((m.intercept() - 4.0).abs() < 1e-9);
        assert_eq!(m.score(&x, &y).unwrap(), 1.0);
    }

    #[test]
    fn rejects_bad_arguments() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        assert!(Ridge::fit(&x, &[1.0], 0.1).is_err());
        assert!(Ridge::fit(&x, &[1.0, 2.0], -1.0).is_err());
        assert!(Ridge::fit(&x, &[1.0, 2.0], f64::NAN).is_err());
        assert!(Ridge::fit(&Matrix::zeros(0, 1), &[], 0.1).is_err());
        let m = Ridge::fit(&x, &[1.0, 2.0], 0.1).unwrap();
        assert!(m.predict_row(&[1.0, 2.0]).is_err());
        assert!(m.score(&x, &[1.0]).is_err());
    }

    #[test]
    fn alpha_getter() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let m = Ridge::fit(&x, &[1.0, 2.0], 0.5).unwrap();
        assert_eq!(m.alpha(), 0.5);
    }
}
