//! Gaussian-process regression with a trainable mean and composite kernel,
//! the grade predictor in AutoBlox's tuning loop (§3.4).
//!
//! Hyperparameters (kernel log-parameters and the constant mean) are tuned by
//! maximizing the log marginal likelihood with a derivative-free coordinate
//! search, which is robust for the small training sets (tens to hundreds of
//! validated configurations) the tuner produces.

use crate::error::{MlError, Result};
use crate::kernel::{Kernel, SumKernel};
use crate::linalg::{Cholesky, Matrix};

/// Prediction from a Gaussian process: posterior mean and variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance (>= 0).
    pub variance: f64,
}

impl Prediction {
    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Upper confidence bound `mean + beta * std_dev`, the acquisition value
    /// used when ranking candidate configurations.
    pub fn ucb(&self, beta: f64) -> f64 {
        self.mean + beta * self.std_dev()
    }
}

/// A fitted Gaussian-process regressor.
///
/// # Examples
///
/// ```
/// use mlkit::gpr::GprBuilder;
/// use mlkit::linalg::Matrix;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
/// let y = [0.0, 1.0, 4.0, 9.0];
/// let gp = GprBuilder::new().optimize_rounds(2).fit(&x, &y)?;
/// let p = gp.predict(&[1.0])?;
/// assert!((p.mean - 1.0).abs() < 0.5);
/// // Far from data, uncertainty grows.
/// assert!(gp.predict(&[30.0])?.variance > p.variance);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Gpr {
    kernel: SumKernel,
    train_x: Matrix,
    alpha: Vec<f64>,
    chol: Cholesky,
    mean: f64,
    log_marginal_likelihood: f64,
}

/// Builder configuring and fitting a [`Gpr`].
#[derive(Debug)]
pub struct GprBuilder {
    kernel: SumKernel,
    jitter: f64,
    optimize_rounds: usize,
}

impl Default for GprBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GprBuilder {
    /// Starts from the AutoBlox default kernel
    /// (`Rbf + RationalQuadratic + White`).
    pub fn new() -> Self {
        GprBuilder {
            kernel: SumKernel::autoblox_default(),
            jitter: 1e-8,
            optimize_rounds: 3,
        }
    }

    /// Replaces the covariance kernel.
    pub fn kernel(mut self, kernel: SumKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the diagonal jitter added for numerical stability.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the number of coordinate-search rounds for hyperparameter tuning
    /// (0 disables tuning and keeps the initial kernel).
    pub fn optimize_rounds(mut self, rounds: usize) -> Self {
        self.optimize_rounds = rounds;
        self
    }

    /// Fits the Gaussian process on row-samples `x` with targets `y`.
    ///
    /// # Errors
    ///
    /// - [`MlError::InsufficientData`] for an empty training set;
    /// - [`MlError::ShapeMismatch`] if `y.len() != x.rows()`;
    /// - [`MlError::NotPositiveDefinite`] if the kernel matrix cannot be
    ///   factorized even after jitter (pathological hyperparameters).
    pub fn fit(self, x: &Matrix, y: &[f64]) -> Result<Gpr> {
        if x.rows() == 0 {
            return Err(MlError::InsufficientData(
                "GPR needs at least one training sample".into(),
            ));
        }
        if y.len() != x.rows() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (y.len(), 1),
                op: "gpr_fit",
            });
        }
        let mut kernel = self.kernel;
        // Trainable constant mean, initialized to the sample mean.
        let mean = y.iter().sum::<f64>() / y.len() as f64;

        if self.optimize_rounds > 0 && x.rows() >= 3 {
            Self::tune(&mut kernel, x, y, mean, self.jitter, self.optimize_rounds);
        }
        let (chol, alpha, lml) = Self::factorize(&kernel, x, y, mean, self.jitter)?;
        Ok(Gpr {
            kernel,
            train_x: x.clone(),
            alpha,
            chol,
            mean,
            log_marginal_likelihood: lml,
        })
    }

    fn factorize(
        kernel: &SumKernel,
        x: &Matrix,
        y: &[f64],
        mean: f64,
        jitter: f64,
    ) -> Result<(Cholesky, Vec<f64>, f64)> {
        let n = x.rows();
        let mut k = kernel.gram(x);
        let mut j = jitter;
        let chol = loop {
            let mut kj = k.clone();
            for i in 0..n {
                kj[(i, i)] += j;
            }
            match kj.cholesky() {
                Ok(c) => break c,
                Err(_) if j < 1.0 => {
                    j *= 10.0;
                    continue;
                }
                Err(e) => return Err(e),
            }
        };
        // Keep the jittered matrix for consistency in k.
        for i in 0..n {
            k[(i, i)] += j;
        }
        let centered: Vec<f64> = y.iter().map(|v| v - mean).collect();
        let alpha = chol.solve(&centered)?;
        let fit_term: f64 = centered.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let lml = -0.5 * fit_term
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok((chol, alpha, lml))
    }

    /// Derivative-free coordinate search over log hyperparameters.
    fn tune(kernel: &mut SumKernel, x: &Matrix, y: &[f64], mean: f64, jitter: f64, rounds: usize) {
        let mut best_p = kernel.params();
        let mut best_lml = match Self::factorize(kernel, x, y, mean, jitter) {
            Ok((_, _, lml)) => lml,
            Err(_) => f64::NEG_INFINITY,
        };
        let mut step = 1.0f64;
        for _ in 0..rounds {
            for i in 0..best_p.len() {
                for dir in [-1.0, 1.0] {
                    let mut cand = best_p.clone();
                    cand[i] += dir * step;
                    // Clamp log-params to a sane window to avoid degenerate
                    // kernels (e.g. zero-length scales).
                    cand[i] = cand[i].clamp(-10.0, 10.0);
                    kernel.set_params(&cand);
                    if let Ok((_, _, lml)) = Self::factorize(kernel, x, y, mean, jitter) {
                        if lml > best_lml {
                            best_lml = lml;
                            best_p = cand;
                        }
                    }
                }
            }
            step *= 0.5;
        }
        kernel.set_params(&best_p);
    }
}

impl Gpr {
    /// Posterior prediction at a single point.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs
    /// from the training data.
    pub fn predict(&self, point: &[f64]) -> Result<Prediction> {
        if point.len() != self.train_x.cols() {
            return Err(MlError::ShapeMismatch {
                left: (1, point.len()),
                right: (1, self.train_x.cols()),
                op: "gpr_predict",
            });
        }
        let n = self.train_x.rows();
        let k_star: Vec<f64> = (0..n)
            .map(|i| self.kernel.eval(point, self.train_x.row(i)))
            .collect();
        let mean = self.mean
            + k_star
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = self.chol.solve(&k_star)?;
        let k_ss = self.kernel.diag(point);
        let variance = (k_ss - k_star.iter().zip(&v).map(|(k, w)| k * w).sum::<f64>()).max(0.0);
        Ok(Prediction { mean, variance })
    }

    /// Posterior predictions for each row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Vec<Prediction>> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }

    /// Log marginal likelihood of the training data under the fitted model.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// The trained constant mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of training samples.
    pub fn n_samples(&self) -> usize {
        self.train_x.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Rbf, White};

    fn toy() -> (Matrix, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| (r[0]).sin()).collect();
        (Matrix::from_rows(&xs), ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (x, y) = toy();
        let gp = GprBuilder::new()
            .kernel(SumKernel::new(vec![
                Box::new(Rbf::new(1.0, 1.0)),
                Box::new(White::new(1e-6)),
            ]))
            .optimize_rounds(0)
            .fit(&x, &y)
            .unwrap();
        for (i, &yi) in y.iter().enumerate() {
            let p = gp.predict(x.row(i)).unwrap();
            assert!((p.mean - yi).abs() < 0.05, "at {i}: {} vs {}", p.mean, yi);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let near = gp.predict(&[1.0]).unwrap();
        let far = gp.predict(&[40.0]).unwrap();
        assert!(far.variance > near.variance);
    }

    #[test]
    fn reverts_to_mean_far_away() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let far = gp.predict(&[1e3]).unwrap();
        assert!((far.mean - gp.mean()).abs() < 1e-6);
    }

    #[test]
    fn tuning_does_not_hurt_likelihood() {
        let (x, y) = toy();
        let untuned = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let tuned = GprBuilder::new().optimize_rounds(3).fit(&x, &y).unwrap();
        assert!(tuned.log_marginal_likelihood() >= untuned.log_marginal_likelihood() - 1e-9);
    }

    #[test]
    fn ucb_ordering() {
        let p = Prediction {
            mean: 1.0,
            variance: 4.0,
        };
        assert_eq!(p.std_dev(), 2.0);
        assert_eq!(p.ucb(0.0), 1.0);
        assert_eq!(p.ucb(1.0), 3.0);
    }

    #[test]
    fn rejects_bad_shapes() {
        let (x, y) = toy();
        assert!(GprBuilder::new().fit(&x, &y[..3]).is_err());
        assert!(GprBuilder::new().fit(&Matrix::zeros(0, 1), &[]).is_err());
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        assert!(gp.predict(&[1.0, 2.0]).is_err());
        assert_eq!(gp.n_samples(), 10);
    }

    #[test]
    fn single_point_training() {
        let x = Matrix::from_rows(&[vec![2.0]]);
        let gp = GprBuilder::new().fit(&x, &[5.0]).unwrap();
        let p = gp.predict(&[2.0]).unwrap();
        assert!((p.mean - 5.0).abs() < 0.5);
    }

    #[test]
    fn predict_batch_matches_single() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let batch = gp.predict_batch(&x).unwrap();
        for (i, b) in batch.iter().enumerate() {
            let single = gp.predict(x.row(i)).unwrap();
            assert_eq!(*b, single);
        }
    }
}
