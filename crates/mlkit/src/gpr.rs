//! Gaussian-process regression with a trainable mean and composite kernel,
//! the grade predictor in AutoBlox's tuning loop (§3.4).
//!
//! Hyperparameters (kernel log-parameters and the constant mean) are tuned by
//! maximizing the log marginal likelihood with a derivative-free coordinate
//! search, which is robust for the small training sets (tens to hundreds of
//! validated configurations) the tuner produces.

use crate::error::{MlError, Result};
use crate::kernel::{Kernel, SumKernel};
use crate::linalg::{Cholesky, Matrix};

/// Prediction from a Gaussian process: posterior mean and variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior variance (>= 0).
    pub variance: f64,
}

impl Prediction {
    /// Floor applied to the variance in [`Prediction::z_score`] and
    /// [`Prediction::nlpd`] so degenerate (zero-variance) predictions keep
    /// both finite.
    pub const VARIANCE_FLOOR: f64 = 1e-12;

    /// Posterior standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.max(0.0).sqrt()
    }

    /// Upper confidence bound `mean + beta * std_dev`, the acquisition value
    /// used when ranking candidate configurations.
    pub fn ucb(&self, beta: f64) -> f64 {
        self.mean + beta * self.std_dev()
    }

    /// Standardized residual `(observed - mean) / std_dev` of a realized
    /// outcome under this predictive distribution. The variance is floored
    /// at [`Prediction::VARIANCE_FLOOR`] so a (numerically) certain
    /// prediction still yields a finite z-score.
    pub fn z_score(&self, observed: f64) -> f64 {
        let sd = self.variance.max(Self::VARIANCE_FLOOR).sqrt();
        (observed - self.mean) / sd
    }

    /// Negative log predictive density of a realized outcome under this
    /// Gaussian predictive distribution:
    /// `0.5 ln(2 pi sigma^2) + (y - mu)^2 / (2 sigma^2)`, with the variance
    /// floored at [`Prediction::VARIANCE_FLOOR`]. Lower is better; the
    /// standard calibration score for probabilistic regressors.
    pub fn nlpd(&self, observed: f64) -> f64 {
        let var = self.variance.max(Self::VARIANCE_FLOOR);
        let resid = observed - self.mean;
        0.5 * (2.0 * std::f64::consts::PI * var).ln() + resid * resid / (2.0 * var)
    }
}

/// A fitted Gaussian-process regressor.
///
/// # Examples
///
/// ```
/// use mlkit::gpr::GprBuilder;
/// use mlkit::linalg::Matrix;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
/// let y = [0.0, 1.0, 4.0, 9.0];
/// let gp = GprBuilder::new().optimize_rounds(2).fit(&x, &y)?;
/// let p = gp.predict(&[1.0])?;
/// assert!((p.mean - 1.0).abs() < 0.5);
/// // Far from data, uncertainty grows.
/// assert!(gp.predict(&[30.0])?.variance > p.variance);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Gpr {
    kernel: SumKernel,
    train_x: Matrix,
    train_y: Vec<f64>,
    alpha: Vec<f64>,
    chol: Cholesky,
    mean: f64,
    log_marginal_likelihood: f64,
    /// Diagonal jitter the factorization actually used (the builder's value
    /// after any escalation); [`Gpr::extend`] adds the same amount to the
    /// new diagonal entry so the bordered matrix matches a full refit.
    jitter: f64,
}

/// Builder configuring and fitting a [`Gpr`].
#[derive(Debug)]
pub struct GprBuilder {
    kernel: SumKernel,
    jitter: f64,
    optimize_rounds: usize,
}

impl Default for GprBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GprBuilder {
    /// Starts from the AutoBlox default kernel
    /// (`Rbf + RationalQuadratic + White`).
    pub fn new() -> Self {
        GprBuilder {
            kernel: SumKernel::autoblox_default(),
            jitter: 1e-8,
            optimize_rounds: 3,
        }
    }

    /// Replaces the covariance kernel.
    pub fn kernel(mut self, kernel: SumKernel) -> Self {
        self.kernel = kernel;
        self
    }

    /// Sets the diagonal jitter added for numerical stability.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets the number of coordinate-search rounds for hyperparameter tuning
    /// (0 disables tuning and keeps the initial kernel).
    pub fn optimize_rounds(mut self, rounds: usize) -> Self {
        self.optimize_rounds = rounds;
        self
    }

    /// Fits the Gaussian process on row-samples `x` with targets `y`.
    ///
    /// # Errors
    ///
    /// - [`MlError::InsufficientData`] for an empty training set;
    /// - [`MlError::ShapeMismatch`] if `y.len() != x.rows()`;
    /// - [`MlError::NotPositiveDefinite`] if the kernel matrix cannot be
    ///   factorized even after jitter (pathological hyperparameters).
    pub fn fit(self, x: &Matrix, y: &[f64]) -> Result<Gpr> {
        if x.rows() == 0 {
            return Err(MlError::InsufficientData(
                "GPR needs at least one training sample".into(),
            ));
        }
        if y.len() != x.rows() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (y.len(), 1),
                op: "gpr_fit",
            });
        }
        let mut kernel = self.kernel;
        // Trainable constant mean, initialized to the sample mean.
        let mean = y.iter().sum::<f64>() / y.len() as f64;

        if self.optimize_rounds > 0 && x.rows() >= 3 {
            Self::tune(&mut kernel, x, y, mean, self.jitter, self.optimize_rounds);
        }
        let (chol, alpha, lml, jitter) = Self::factorize(&kernel, x, y, mean, self.jitter)?;
        Ok(Gpr {
            kernel,
            train_x: x.clone(),
            train_y: y.to_vec(),
            alpha,
            chol,
            mean,
            log_marginal_likelihood: lml,
            jitter,
        })
    }

    fn factorize(
        kernel: &SumKernel,
        x: &Matrix,
        y: &[f64],
        mean: f64,
        jitter: f64,
    ) -> Result<(Cholesky, Vec<f64>, f64, f64)> {
        let n = x.rows();
        let mut k = kernel.gram(x);
        let mut j = jitter;
        let chol = loop {
            let mut kj = k.clone();
            for i in 0..n {
                kj[(i, i)] += j;
            }
            match kj.cholesky() {
                Ok(c) => break c,
                Err(_) if j < 1.0 => {
                    j *= 10.0;
                    continue;
                }
                Err(e) => return Err(e),
            }
        };
        // Keep the jittered matrix for consistency in k.
        for i in 0..n {
            k[(i, i)] += j;
        }
        let centered: Vec<f64> = y.iter().map(|v| v - mean).collect();
        let alpha = chol.solve(&centered)?;
        let fit_term: f64 = centered.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let lml = -0.5 * fit_term
            - 0.5 * chol.log_det()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok((chol, alpha, lml, j))
    }

    /// Derivative-free coordinate search over log hyperparameters.
    fn tune(kernel: &mut SumKernel, x: &Matrix, y: &[f64], mean: f64, jitter: f64, rounds: usize) {
        let mut best_p = kernel.params();
        let mut best_lml = match Self::factorize(kernel, x, y, mean, jitter) {
            Ok((_, _, lml, _)) => lml,
            Err(_) => f64::NEG_INFINITY,
        };
        let mut step = 1.0f64;
        for _ in 0..rounds {
            for i in 0..best_p.len() {
                for dir in [-1.0, 1.0] {
                    let mut cand = best_p.clone();
                    cand[i] += dir * step;
                    // Clamp log-params to a sane window to avoid degenerate
                    // kernels (e.g. zero-length scales).
                    cand[i] = cand[i].clamp(-10.0, 10.0);
                    kernel.set_params(&cand);
                    if let Ok((_, _, lml, _)) = Self::factorize(kernel, x, y, mean, jitter) {
                        if lml > best_lml {
                            best_lml = lml;
                            best_p = cand;
                        }
                    }
                }
            }
            step *= 0.5;
        }
        kernel.set_params(&best_p);
    }
}

impl Gpr {
    /// Posterior prediction at a single point.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs
    /// from the training data.
    pub fn predict(&self, point: &[f64]) -> Result<Prediction> {
        if point.len() != self.train_x.cols() {
            return Err(MlError::ShapeMismatch {
                left: (1, point.len()),
                right: (1, self.train_x.cols()),
                op: "gpr_predict",
            });
        }
        let n = self.train_x.rows();
        let k_star: Vec<f64> = (0..n)
            .map(|i| self.kernel.eval(point, self.train_x.row(i)))
            .collect();
        let mean = self.mean
            + k_star
                .iter()
                .zip(&self.alpha)
                .map(|(k, a)| k * a)
                .sum::<f64>();
        let v = self.chol.solve(&k_star)?;
        let k_ss = self.kernel.diag(point);
        let variance = (k_ss - k_star.iter().zip(&v).map(|(k, w)| k * w).sum::<f64>()).max(0.0);
        Ok(Prediction { mean, variance })
    }

    /// Posterior predictions for each row of `x`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs.
    pub fn predict_batch(&self, x: &Matrix) -> Result<Vec<Prediction>> {
        (0..x.rows()).map(|r| self.predict(x.row(r))).collect()
    }

    /// Log marginal likelihood of the training data under the fitted model.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// The trained constant mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Number of training samples.
    pub fn n_samples(&self) -> usize {
        self.train_x.rows()
    }

    /// The fitted covariance kernel (hyperparameters frozen since the last
    /// full fit). Callers that need an exact from-scratch refit with the
    /// same hyperparameters clone this into a [`GprBuilder`] with
    /// `optimize_rounds(0)`.
    pub fn kernel(&self) -> &SumKernel {
        &self.kernel
    }

    /// Returns a new model trained on the old observations plus
    /// `(x_new, y_new)`, without refitting from scratch.
    ///
    /// Hyperparameters stay frozen; the Cholesky factor grows by one
    /// bordered row ([`Cholesky::extend`], O(n²)) and the constant mean is
    /// updated to the new sample mean with `alpha` re-solved against it.
    /// The result is bit-identical to an `optimize_rounds(0)` refit with
    /// this model's kernel and jitter on the full n+1 samples, because the
    /// bordered update replays the same arithmetic — that exactness is what
    /// lets the tuner's surrogate cache rebuild deterministically after a
    /// checkpoint resume.
    ///
    /// # Errors
    ///
    /// - [`MlError::ShapeMismatch`] if the feature dimension differs;
    /// - [`MlError::NotPositiveDefinite`] if the bordered kernel matrix is
    ///   no longer positive definite (e.g. a near-duplicate sample); the
    ///   caller should fall back to a full refit, which re-escalates jitter.
    pub fn extend(&self, x_new: &[f64], y_new: f64) -> Result<Gpr> {
        if x_new.len() != self.train_x.cols() {
            return Err(MlError::ShapeMismatch {
                left: (1, x_new.len()),
                right: (1, self.train_x.cols()),
                op: "gpr_extend",
            });
        }
        let n = self.train_x.rows();
        let cross: Vec<f64> = (0..n)
            .map(|i| self.kernel.eval(x_new, self.train_x.row(i)))
            .collect();
        let diag = self.kernel.diag(x_new) + self.jitter;
        let chol = self.chol.extend(&cross, diag)?;

        let mut train_x = self.train_x.clone();
        train_x.push_row(x_new);
        let mut train_y = self.train_y.clone();
        train_y.push(y_new);
        let m = train_y.len();
        let mean = train_y.iter().sum::<f64>() / m as f64;
        let centered: Vec<f64> = train_y.iter().map(|v| v - mean).collect();
        let alpha = chol.solve(&centered)?;
        let fit_term: f64 = centered.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        let lml = -0.5 * fit_term
            - 0.5 * chol.log_det()
            - 0.5 * m as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(Gpr {
            kernel: self.kernel.clone(),
            train_x,
            train_y,
            alpha,
            chol,
            mean,
            log_marginal_likelihood: lml,
            jitter: self.jitter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Rbf, White};

    fn toy() -> (Matrix, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| (r[0]).sin()).collect();
        (Matrix::from_rows(&xs), ys)
    }

    #[test]
    fn interpolates_training_points() {
        let (x, y) = toy();
        let gp = GprBuilder::new()
            .kernel(SumKernel::new(vec![
                Box::new(Rbf::new(1.0, 1.0)),
                Box::new(White::new(1e-6)),
            ]))
            .optimize_rounds(0)
            .fit(&x, &y)
            .unwrap();
        for (i, &yi) in y.iter().enumerate() {
            let p = gp.predict(x.row(i)).unwrap();
            assert!((p.mean - yi).abs() < 0.05, "at {i}: {} vs {}", p.mean, yi);
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let near = gp.predict(&[1.0]).unwrap();
        let far = gp.predict(&[40.0]).unwrap();
        assert!(far.variance > near.variance);
    }

    #[test]
    fn reverts_to_mean_far_away() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let far = gp.predict(&[1e3]).unwrap();
        assert!((far.mean - gp.mean()).abs() < 1e-6);
    }

    #[test]
    fn tuning_does_not_hurt_likelihood() {
        let (x, y) = toy();
        let untuned = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let tuned = GprBuilder::new().optimize_rounds(3).fit(&x, &y).unwrap();
        assert!(tuned.log_marginal_likelihood() >= untuned.log_marginal_likelihood() - 1e-9);
    }

    #[test]
    fn ucb_ordering() {
        let p = Prediction {
            mean: 1.0,
            variance: 4.0,
        };
        assert_eq!(p.std_dev(), 2.0);
        assert_eq!(p.ucb(0.0), 1.0);
        assert_eq!(p.ucb(1.0), 3.0);
    }

    #[test]
    fn calibration_scores_are_finite_and_consistent() {
        let p = Prediction {
            mean: 1.0,
            variance: 4.0,
        };
        // One observed standard deviation above the mean.
        assert!((p.z_score(3.0) - 1.0).abs() < 1e-12);
        assert!((p.z_score(-1.0) + 1.0).abs() < 1e-12);
        // NLPD is minimized at the mean and grows with the residual.
        assert!(p.nlpd(1.0) < p.nlpd(3.0));
        assert!(p.nlpd(3.0) < p.nlpd(9.0));
        // Degenerate variance stays finite thanks to the floor.
        let degenerate = Prediction {
            mean: 0.0,
            variance: 0.0,
        };
        assert!(degenerate.z_score(0.5).is_finite());
        assert!(degenerate.nlpd(0.5).is_finite());
    }

    #[test]
    fn rejects_bad_shapes() {
        let (x, y) = toy();
        assert!(GprBuilder::new().fit(&x, &y[..3]).is_err());
        assert!(GprBuilder::new().fit(&Matrix::zeros(0, 1), &[]).is_err());
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        assert!(gp.predict(&[1.0, 2.0]).is_err());
        assert_eq!(gp.n_samples(), 10);
    }

    #[test]
    fn single_point_training() {
        let x = Matrix::from_rows(&[vec![2.0]]);
        let gp = GprBuilder::new().fit(&x, &[5.0]).unwrap();
        let p = gp.predict(&[2.0]).unwrap();
        assert!((p.mean - 5.0).abs() < 0.5);
    }

    #[test]
    fn predict_batch_matches_single() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        let batch = gp.predict_batch(&x).unwrap();
        for (i, b) in batch.iter().enumerate() {
            let single = gp.predict(x.row(i)).unwrap();
            assert_eq!(*b, single);
        }
    }

    /// `extend` must be bit-identical to a frozen-hyperparameter refit on
    /// the grown training set — the exactness the tuner's resumable
    /// surrogate cache depends on.
    #[test]
    fn extend_is_bit_identical_to_frozen_refit() {
        let (x, y) = toy();
        let base = GprBuilder::new()
            .optimize_rounds(0)
            .fit(&x, &y[..x.rows()])
            .unwrap();
        let extended = base.extend(&[7.25], 0.9).unwrap();

        let mut x2 = x.clone();
        x2.push_row(&[7.25]);
        let mut y2 = y.clone();
        y2.push(0.9);
        let refit = GprBuilder::new()
            .kernel(base.kernel().clone())
            .optimize_rounds(0)
            .fit(&x2, &y2)
            .unwrap();

        assert_eq!(extended.n_samples(), refit.n_samples());
        assert_eq!(extended.mean(), refit.mean());
        assert_eq!(
            extended.log_marginal_likelihood(),
            refit.log_marginal_likelihood()
        );
        for p in 0..30 {
            let at = [p as f64 * 0.3 - 1.0];
            let a = extended.predict(&at).unwrap();
            let b = refit.predict(&at).unwrap();
            assert_eq!(a.mean, b.mean, "at {at:?}");
            assert_eq!(a.variance, b.variance, "at {at:?}");
        }
    }

    #[test]
    fn extend_after_tuned_fit_keeps_hyperparameters() {
        let (x, y) = toy();
        let tuned = GprBuilder::new().optimize_rounds(2).fit(&x, &y).unwrap();
        let params_before = tuned.kernel().params();
        let grown = tuned.extend(&[9.5], -0.2).unwrap();
        assert_eq!(grown.kernel().params(), params_before);
        assert_eq!(grown.n_samples(), tuned.n_samples() + 1);
        // The extended model still interpolates the new observation roughly.
        let p = grown.predict(&[9.5]).unwrap();
        assert!((p.mean - (-0.2)).abs() < 0.5, "mean {}", p.mean);
    }

    #[test]
    fn extend_rejects_wrong_dimension() {
        let (x, y) = toy();
        let gp = GprBuilder::new().optimize_rounds(0).fit(&x, &y).unwrap();
        assert!(gp.extend(&[1.0, 2.0], 0.0).is_err());
    }
}
