//! A minimal scoped worker pool for deterministic data-parallel fan-out.
//!
//! Built on `std::thread::scope` so borrowed inputs (validators, parameter
//! spaces, matrices) can be shared without `'static` bounds or extra
//! allocation. Work items are claimed from an atomic counter and results are
//! written back by index, so the output order — and therefore every
//! downstream computation — is identical to a sequential run regardless of
//! the thread count or OS scheduling.
//!
//! The pool size comes from, in priority order: a process-wide programmatic
//! override ([`set_max_threads`]), the `AUTOBLOX_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. A limit of `1`
//! runs the caller's closure inline with no threads spawned at all, which
//! makes the sequential baseline trivially exact.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment variable consulted for the default worker count.
pub const THREADS_ENV: &str = "AUTOBLOX_THREADS";

/// The worker-pool size parallel helpers use when none is given explicitly.
///
/// Resolution order: [`set_max_threads`] override, then the
/// `AUTOBLOX_THREADS` environment variable, then the machine's available
/// parallelism. Always at least 1.
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Overrides the pool size process-wide (`0` clears the override, restoring
/// the environment/hardware default). Intended for benchmarks and tests that
/// compare thread counts within one process.
pub fn set_max_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Maps `f` over `items` on the default pool ([`max_threads`]), preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(max_threads(), items, f)
}

/// Maps `f` over `items` with at most `threads` workers, preserving input
/// order in the output. `threads <= 1` (or a single item) runs inline on the
/// calling thread.
///
/// # Panics
///
/// Panics if `f` panicked on any item (the panic propagates when the scope
/// joins its workers).
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Each slot is locked only for the instant of its take/store; the atomic
    // counter hands out indices so a slow item never blocks the others.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().take().expect("each index claimed once");
                    let r = f(item);
                    *results[i].lock() = Some(r);
                })
            })
            .collect();
        for w in workers {
            // Re-raise a worker's panic with its original payload.
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_with(4, (0..100).collect(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_matches() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map_with(1, items.clone(), |i| i.wrapping_mul(0x9E37_79B9));
        let par = parallel_map_with(8, items, |i| i.wrapping_mul(0x9E37_79B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map_with(4, Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_environment() {
        let data = [1.0, 2.0, 3.0];
        let out = parallel_map_with(2, vec![0usize, 1, 2], |i| data[i] * 10.0);
        assert_eq!(out, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn override_round_trip() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = parallel_map_with(2, vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
