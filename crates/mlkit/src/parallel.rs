//! A minimal scoped worker pool for deterministic data-parallel fan-out.
//!
//! Built on `std::thread::scope` so borrowed inputs (validators, parameter
//! spaces, matrices) can be shared without `'static` bounds or extra
//! allocation. Work items are claimed from an atomic counter and results are
//! written back by index, so the output order — and therefore every
//! downstream computation — is identical to a sequential run regardless of
//! the thread count or OS scheduling.
//!
//! The pool size comes from, in priority order: a process-wide programmatic
//! override ([`set_max_threads`]), the `AUTOBLOX_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. A limit of `1`
//! runs the caller's closure inline with no threads spawned at all, which
//! makes the sequential baseline trivially exact.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use telemetry::Counter;

/// Process-wide thread-count override; `0` means "not set".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

// Pool utilization telemetry. Every counter is recorded only while
// `telemetry::enabled()` is on, so the default (disabled) fan-out path
// performs exactly one relaxed atomic load per batch and nothing else.
static POOL_BATCHES: Counter = Counter::new();
static POOL_INLINE_BATCHES: Counter = Counter::new();
static POOL_JOBS: Counter = Counter::new();
static POOL_INLINE_JOBS: Counter = Counter::new();
static POOL_WORKERS_SPAWNED: Counter = Counter::new();
static POOL_BUSY_NS: Counter = Counter::new();
static POOL_WALL_NS: Counter = Counter::new();
static POOL_WORKER_WALL_NS: Counter = Counter::new();

/// Snapshot of the worker pool's utilization counters.
///
/// Collected process-wide across every [`parallel_map`] /
/// [`parallel_map_with`] call while telemetry is enabled (see the
/// `telemetry` crate); all zeros otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Batches that spawned worker threads.
    pub batches: u64,
    /// Batches that ran inline on the calling thread (1 thread or 1 item).
    pub inline_batches: u64,
    /// Work items processed by spawned workers.
    pub jobs: u64,
    /// Work items processed inline.
    pub inline_jobs: u64,
    /// Worker threads spawned in total.
    pub workers_spawned: u64,
    /// Summed busy time of all spawned workers, ns.
    pub busy_ns: u64,
    /// Summed wall-clock time of the spawning batches, ns.
    pub wall_ns: u64,
    /// Summed `workers x batch wall-clock` capacity, ns (the utilization
    /// denominator).
    pub worker_wall_ns: u64,
}

impl PoolStats {
    /// Fraction of the spawned workers' available time spent busy, in
    /// `0.0..=1.0`; `0.0` before any instrumented batch ran.
    pub fn utilization(&self) -> f64 {
        if self.worker_wall_ns == 0 {
            0.0
        } else {
            (self.busy_ns as f64 / self.worker_wall_ns as f64).min(1.0)
        }
    }
}

/// Snapshot of the process-wide pool utilization counters.
pub fn pool_stats() -> PoolStats {
    PoolStats {
        batches: POOL_BATCHES.get(),
        inline_batches: POOL_INLINE_BATCHES.get(),
        jobs: POOL_JOBS.get(),
        inline_jobs: POOL_INLINE_JOBS.get(),
        workers_spawned: POOL_WORKERS_SPAWNED.get(),
        busy_ns: POOL_BUSY_NS.get(),
        wall_ns: POOL_WALL_NS.get(),
        worker_wall_ns: POOL_WORKER_WALL_NS.get(),
    }
}

/// Resets the process-wide pool utilization counters to zero (used at the
/// start of an instrumented run so the report covers exactly that run).
pub fn reset_pool_stats() {
    for c in [
        &POOL_BATCHES,
        &POOL_INLINE_BATCHES,
        &POOL_JOBS,
        &POOL_INLINE_JOBS,
        &POOL_WORKERS_SPAWNED,
        &POOL_BUSY_NS,
        &POOL_WALL_NS,
        &POOL_WORKER_WALL_NS,
    ] {
        c.reset();
    }
}

/// Environment variable consulted for the default worker count.
pub const THREADS_ENV: &str = "AUTOBLOX_THREADS";

/// The worker-pool size parallel helpers use when none is given explicitly.
///
/// Resolution order: [`set_max_threads`] override, then the
/// `AUTOBLOX_THREADS` environment variable, then the machine's available
/// parallelism. Always at least 1.
pub fn max_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        return o;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Overrides the pool size process-wide (`0` clears the override, restoring
/// the environment/hardware default). Intended for benchmarks and tests that
/// compare thread counts within one process.
pub fn set_max_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Maps `f` over `items` on the default pool ([`max_threads`]), preserving
/// input order in the output.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(max_threads(), items, f)
}

/// Maps `f` over `items` with at most `threads` workers, preserving input
/// order in the output. `threads <= 1` (or a single item) runs inline on the
/// calling thread.
///
/// # Panics
///
/// Panics if `f` panicked on any item (the panic propagates when the scope
/// joins its workers).
pub fn parallel_map_with<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = threads.min(n);
    let instrument = telemetry::enabled();
    if threads <= 1 {
        if instrument {
            POOL_INLINE_BATCHES.inc();
            POOL_INLINE_JOBS.add(n as u64);
        }
        return items.into_iter().map(f).collect();
    }
    if instrument {
        POOL_BATCHES.inc();
        POOL_JOBS.add(n as u64);
        POOL_WORKERS_SPAWNED.add(threads as u64);
    }
    let batch_start = telemetry::start();
    // Workers adopt the caller's current span as their ambient parent, so
    // spans opened inside `f` nest identically to an inline run.
    let fanout_span = telemetry::span::current_span();
    // Each slot is locked only for the instant of its take/store; the atomic
    // counter hands out indices so a slow item never blocks the others.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let _parent = telemetry::span::adopt_parent(fanout_span);
                    // A worker claims indices until the list is exhausted,
                    // so its spawn-to-exit elapsed time IS its busy time.
                    let busy = telemetry::start();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = slots[i].lock().take().expect("each index claimed once");
                        let r = f(item);
                        *results[i].lock() = Some(r);
                    }
                    POOL_BUSY_NS.add(telemetry::elapsed_ns(busy));
                })
            })
            .collect();
        for w in workers {
            // Re-raise a worker's panic with its original payload.
            if let Err(payload) = w.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    let wall = telemetry::elapsed_ns(batch_start);
    if instrument {
        POOL_WALL_NS.add(wall);
        POOL_WORKER_WALL_NS.add(wall * threads as u64);
    }
    results
        .into_iter()
        .map(|m| m.into_inner().expect("worker filled its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let out = parallel_map_with(4, (0..100).collect(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_path_matches() {
        let items: Vec<u64> = (0..37).collect();
        let seq = parallel_map_with(1, items.clone(), |i| i.wrapping_mul(0x9E37_79B9));
        let par = parallel_map_with(8, items, |i| i.wrapping_mul(0x9E37_79B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input() {
        let out: Vec<i32> = parallel_map_with(4, Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn borrows_environment() {
        let data = [1.0, 2.0, 3.0];
        let out = parallel_map_with(2, vec![0usize, 1, 2], |i| data[i] * 10.0);
        assert_eq!(out, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn override_round_trip() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }

    /// The only test that toggles the process-wide telemetry switch, so it
    /// cannot race siblings over it; assertions are lower bounds because
    /// concurrently running tests may also record while the switch is on.
    #[test]
    fn pool_stats_record_when_enabled() {
        let disabled_before = pool_stats();
        let out = parallel_map_with(3, (0..64).collect(), |i: u64| i + 1);
        assert_eq!(out.len(), 64);
        let disabled_after = pool_stats();
        assert_eq!(
            disabled_before, disabled_after,
            "disabled telemetry must not move pool counters"
        );

        telemetry::set_enabled(true);
        let before = pool_stats();
        let _ = parallel_map_with(3, (0..64).collect(), |i: u64| i + 1);
        let _ = parallel_map_with(1, (0..10).collect(), |i: u64| i + 1);
        let after = pool_stats();
        telemetry::set_enabled(false);

        assert!(after.batches > before.batches);
        assert!(after.jobs >= before.jobs + 64);
        assert!(after.workers_spawned >= before.workers_spawned + 3);
        assert!(after.inline_batches > before.inline_batches);
        assert!(after.inline_jobs >= before.inline_jobs + 10);
        assert!(after.worker_wall_ns > before.worker_wall_ns);
        assert!(after.utilization() >= 0.0 && after.utilization() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = parallel_map_with(2, vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
