//! # mlkit — self-contained statistical learning toolkit
//!
//! The machine-learning substrate of the AutoBlox reproduction. The paper
//! builds on scikit-learn; this crate re-implements exactly the pieces
//! AutoBlox uses, with no external numerical dependencies:
//!
//! - [`linalg`]: dense matrices, Cholesky factorization, symmetric (Jacobi)
//!   eigendecomposition, and distance helpers;
//! - [`scale`]: z-score and min-max feature scaling;
//! - [`pca`]: principal component analysis (workload clustering, §3.1);
//! - [`kmeans`]: k-means++ clustering (workload clustering, §3.1);
//! - [`ridge`]: ridge regression (fine-grained parameter pruning, §3.3);
//! - [`kernel`] and [`gpr`]: Gaussian-process regression with
//!   RBF + RationalQuadratic + White kernels (grade prediction, §3.4);
//! - [`nn`]: a small MLP regressor, the DNN comparison point of §3.2;
//! - [`metrics`]: clustering quality scores (silhouette, adjusted Rand);
//! - [`parallel`]: a scoped worker pool for deterministic data-parallel
//!   fan-out (kernel matrices here; simulator validation downstream).
//!
//! # Examples
//!
//! Cluster points and predict with a Gaussian process:
//!
//! ```
//! use mlkit::kmeans::KMeans;
//! use mlkit::gpr::GprBuilder;
//! use mlkit::linalg::Matrix;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pts = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![5.0], vec![5.1]]);
//! let km = KMeans::fit(&pts, 2, 0)?;
//! assert_eq!(km.k(), 2);
//!
//! let gp = GprBuilder::new().fit(&pts, &[0.0, 0.1, 5.0, 5.1])?;
//! assert!((gp.predict(&[0.05])?.mean).abs() < 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod gpr;
pub mod kernel;
pub mod kmeans;
pub mod linalg;
pub mod metrics;
pub mod nn;
pub mod parallel;
pub mod pca;
pub mod ridge;
pub mod scale;

pub use error::{MlError, Result};
