//! Dense, row-major linear algebra: the minimum needed by PCA, Ridge
//! regression, and Gaussian-process regression.
//!
//! The [`Matrix`] type stores `f64` elements contiguously in row-major order.
//! Factorizations provided: Cholesky (for SPD solves in Ridge/GPR) and a
//! cyclic Jacobi eigendecomposition for symmetric matrices (for PCA).

use crate::error::{MlError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense row-major matrix of `f64`.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
///
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(a[(1, 0)], 3.0);
/// let at = a.transpose();
/// assert_eq!(at[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlkit::linalg::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(1, 1)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have different lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must equal rows*cols");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies one column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Appends one row in place (used by the incremental GPR to grow its
    /// training set without rebuilding the matrix).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` on a non-empty matrix. Pushing
    /// onto a `0 x 0` matrix sets the column count from the row.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "pushed row has wrong length");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(MlError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let lhs_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in lhs_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(MlError::ShapeMismatch {
                left: self.shape(),
                right: (v.len(), 1),
                op: "matvec",
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Scales every element by `s`, returning a new matrix.
    pub fn scaled(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// `true` if the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for c in (r + 1)..self.cols {
                if (self[(r, c)] - self[(c, r)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Cholesky factorization `A = L * L^T` for a symmetric positive-definite
    /// matrix, returning the lower-triangular factor.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::NotPositiveDefinite`] if a non-positive pivot is
    /// encountered, and [`MlError::ShapeMismatch`] if the matrix is not square.
    ///
    /// # Examples
    ///
    /// ```
    /// use mlkit::linalg::Matrix;
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
    /// let l = a.cholesky()?;
    /// let back = l.factor().matmul(&l.factor().transpose())?;
    /// assert!((back[(0, 0)] - 4.0).abs() < 1e-12);
    /// # Ok(())
    /// # }
    /// ```
    pub fn cholesky(&self) -> Result<Cholesky> {
        if self.rows != self.cols {
            return Err(MlError::ShapeMismatch {
                left: self.shape(),
                right: self.shape(),
                op: "cholesky",
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(MlError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Symmetric eigendecomposition via the cyclic Jacobi method.
    ///
    /// Returns eigenvalues in descending order with matching (unit-norm)
    /// eigenvectors as the *columns* of the returned matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] for non-square input and
    /// [`MlError::NoConvergence`] if off-diagonal mass does not vanish within
    /// the sweep budget.
    pub fn symmetric_eigen(&self) -> Result<Eigen> {
        if self.rows != self.cols {
            return Err(MlError::ShapeMismatch {
                left: self.shape(),
                right: self.shape(),
                op: "symmetric_eigen",
            });
        }
        let n = self.rows;
        if n == 0 {
            return Ok(Eigen {
                values: Vec::new(),
                vectors: Matrix::zeros(0, 0),
            });
        }
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 100;
        for sweep in 0..=max_sweeps {
            let mut off = 0.0;
            for r in 0..n {
                for c in (r + 1)..n {
                    off += a[(r, c)] * a[(r, c)];
                }
            }
            if off.sqrt() < 1e-11 {
                return Ok(Self::sorted_eigen(a, v));
            }
            if sweep == max_sweeps {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = a[(p, p)];
                    let aqq = a[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply the rotation G(p, q, theta) on both sides.
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(MlError::NoConvergence {
            iterations: max_sweeps,
        })
    }

    fn sorted_eigen(a: Matrix, v: Matrix) -> Eigen {
        let n = a.rows;
        let mut idx: Vec<usize> = (0..n).collect();
        let diag: Vec<f64> = (0..n).map(|i| a[(i, i)]).collect();
        idx.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("finite eigenvalues"));
        let values = idx.iter().map(|&i| diag[i]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_c, &old_c) in idx.iter().enumerate() {
            for r in 0..n {
                vectors[(r, new_c)] = v[(r, old_c)];
            }
        }
        Eigen { values, vectors }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Lower-triangular Cholesky factor of an SPD matrix, usable for solves.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Borrows the lower-triangular factor `L` with `A = L L^T`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` using the factorization.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `b.len()` differs from the
    /// factor dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(MlError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "cholesky_solve",
            });
        }
        // Forward substitution: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for (j, &yj) in y.iter().enumerate().take(i) {
                sum -= self.l[(i, j)] * yj;
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                sum -= self.l[(j, i)] * xj;
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column-by-column.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `B.rows()` differs from the
    /// factor dimension.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.l.rows();
        if b.rows() != n {
            return Err(MlError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "cholesky_solve_matrix",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for c in 0..b.cols() {
            let col = b.col(c);
            let x = self.solve(&col)?;
            for r in 0..n {
                out[(r, c)] = x[r];
            }
        }
        Ok(out)
    }

    /// Log-determinant of the original matrix `A`: `2 * sum(ln L[i][i])`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Factor of the `(n+1) x (n+1)` matrix obtained by bordering `A` with
    /// one new column `cross` and diagonal entry `diag`:
    ///
    /// ```text
    /// A' = [ A      cross ]      L' = [ L    0 ]
    ///      [ crossᵀ diag  ]           [ rᵀ   d ]
    /// ```
    ///
    /// The existing factor is reused unchanged; only the new bottom row is
    /// computed, by forward substitution `L r = cross` followed by
    /// `d = sqrt(diag - rᵀr)` — O(n²) instead of the O(n³) full refactor.
    /// The arithmetic follows the same operation order as
    /// [`Matrix::cholesky`], so extending a factor row by row yields the
    /// bit-identical `L'` a from-scratch factorization of `A'` produces.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `cross.len()` differs from the
    /// factor dimension and [`MlError::NotPositiveDefinite`] if the bordered
    /// matrix loses positive definiteness (`diag - rᵀr <= 0`).
    pub fn extend(&self, cross: &[f64], diag: f64) -> Result<Cholesky> {
        let n = self.l.rows();
        if cross.len() != n {
            return Err(MlError::ShapeMismatch {
                left: (n, n),
                right: (cross.len(), 1),
                op: "cholesky_extend",
            });
        }
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        // New bottom row, in `Matrix::cholesky`'s operation order.
        for j in 0..n {
            let mut sum = cross[j];
            for k in 0..j {
                sum -= l[(n, k)] * l[(j, k)];
            }
            l[(n, j)] = sum / l[(j, j)];
        }
        let mut sum = diag;
        for k in 0..n {
            sum -= l[(n, k)] * l[(n, k)];
        }
        if sum <= 0.0 || !sum.is_finite() {
            return Err(MlError::NotPositiveDefinite);
        }
        l[(n, n)] = sum.sqrt();
        Ok(Cholesky { l })
    }
}

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Unit eigenvectors as columns, matching `values` order.
    pub vectors: Matrix,
}

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Manhattan (L1) distance between two equally long slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(2, 2)], 1.0);
        assert_eq!(i[(2, 1)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MlError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn cholesky_solve_known_system() {
        // A = [[4, 2], [2, 3]], b = [2, -1] -> x = [1, -1].
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = a.cholesky().unwrap();
        let x = ch.solve(&[2.0, -1.0]).unwrap();
        assert!(approx(x[0], 1.0, 1e-12));
        assert!(approx(x[1], -1.0, 1e-12));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(a.cholesky().unwrap_err(), MlError::NotPositiveDefinite);
    }

    #[test]
    fn cholesky_log_det() {
        let a = Matrix::from_rows(&[vec![4.0, 0.0], vec![0.0, 9.0]]);
        let ch = a.cholesky().unwrap();
        assert!(approx(ch.log_det(), (36.0f64).ln(), 1e-12));
    }

    #[test]
    fn cholesky_solve_matrix_identity() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let ch = a.cholesky().unwrap();
        let inv = ch.solve_matrix(&Matrix::identity(2)).unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(approx(prod[(0, 0)], 1.0, 1e-12));
        assert!(approx(prod[(0, 1)], 0.0, 1e-12));
    }

    #[test]
    fn eigen_diagonal() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 7.0]]);
        let e = a.symmetric_eigen().unwrap();
        assert!(approx(e.values[0], 7.0, 1e-10));
        assert!(approx(e.values[1], 3.0, 1e-10));
    }

    #[test]
    fn eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = a.symmetric_eigen().unwrap();
        assert!(approx(e.values[0], 3.0, 1e-10));
        assert!(approx(e.values[1], 1.0, 1e-10));
        // Eigenvector for eigenvalue 3 is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert!(approx(v0[0].abs(), 1.0 / 2.0_f64.sqrt(), 1e-10));
        assert!(approx(v0[0], v0[1], 1e-10));
    }

    #[test]
    fn eigen_reconstructs_matrix() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 5.0],
        ]);
        let e = a.symmetric_eigen().unwrap();
        // A == V diag(w) V^T.
        let n = 3;
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        let rec = e
            .vectors
            .matmul(&d)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        for r in 0..n {
            for c in 0..n {
                assert!(approx(rec[(r, c)], a[(r, c)], 1e-8));
            }
        }
    }

    #[test]
    fn eigen_empty() {
        let e = Matrix::zeros(0, 0).symmetric_eigen().unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn symmetry_check() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert!(a.is_symmetric(1e-12));
        let b = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 1.0]]);
        assert!(!b.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn distances() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, -4.0]), 7.0);
    }

    #[test]
    fn row_col_access() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
        assert_eq!(a.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn push_row_grows_matrix() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        a.push_row(&[3.0, 4.0]);
        assert_eq!(a, Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let mut empty = Matrix::zeros(0, 0);
        empty.push_row(&[7.0, 8.0, 9.0]);
        assert_eq!(empty.shape(), (1, 3));
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn push_row_rejects_wrong_width() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        a.push_row(&[3.0]);
    }

    /// Extending the factor of the leading principal submatrix row by row
    /// must reproduce the full factorization bit for bit: the bordered
    /// update performs the same operations in the same order.
    #[test]
    fn cholesky_extend_is_bit_identical_to_refactor() {
        let a = Matrix::from_rows(&[
            vec![6.0, 2.0, 1.0, 0.5],
            vec![2.0, 5.0, 0.3, 0.2],
            vec![1.0, 0.3, 4.0, 0.1],
            vec![0.5, 0.2, 0.1, 3.0],
        ]);
        let full = a.cholesky().unwrap();
        // Start from the 1x1 leading block and border one row at a time.
        let mut grown = Matrix::from_rows(&[vec![a[(0, 0)]]]).cholesky().unwrap();
        for m in 1..4 {
            let cross: Vec<f64> = (0..m).map(|j| a[(m, j)]).collect();
            grown = grown.extend(&cross, a[(m, m)]).unwrap();
        }
        assert_eq!(grown.factor(), full.factor());
    }

    #[test]
    fn cholesky_extend_rejects_bad_input() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let ch = a.cholesky().unwrap();
        assert!(matches!(
            ch.extend(&[1.0], 5.0),
            Err(MlError::ShapeMismatch { .. })
        ));
        // Bordering with a duplicate of row 0 makes A' singular.
        assert_eq!(
            ch.extend(&[4.0, 2.0], 4.0).unwrap_err(),
            MlError::NotPositiveDefinite
        );
    }
}
