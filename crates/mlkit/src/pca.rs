//! Principal component analysis via eigendecomposition of the covariance
//! matrix, as used by AutoBlox's workload clustering (§3.1 of the paper).

use crate::error::{MlError, Result};
use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted PCA model projecting feature rows onto the leading principal
/// components.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// use mlkit::pca::Pca;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Points on a line: one component explains everything.
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.0],
///     vec![1.0, 2.0],
///     vec![2.0, 4.0],
///     vec![3.0, 6.0],
/// ]);
/// let pca = Pca::fit(&x, 1)?;
/// assert!(pca.explained_variance_ratio()[0] > 0.999);
/// let z = pca.transform(&x)?;
/// assert_eq!(z.shape(), (4, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Pca {
    mean: Vec<f64>,
    /// Principal axes as rows: `components[(k, d)]`.
    components: Matrix,
    explained_variance: Vec<f64>,
    explained_variance_ratio: Vec<f64>,
}

impl Pca {
    /// Fits a PCA with `n_components` components on row-sample matrix `x`.
    ///
    /// # Errors
    ///
    /// - [`MlError::InsufficientData`] if `x` has fewer than 2 rows;
    /// - [`MlError::InvalidArgument`] if `n_components` is zero or exceeds
    ///   the feature dimension.
    pub fn fit(x: &Matrix, n_components: usize) -> Result<Self> {
        if x.rows() < 2 {
            return Err(MlError::InsufficientData(format!(
                "PCA needs at least 2 samples, got {}",
                x.rows()
            )));
        }
        if n_components == 0 || n_components > x.cols() {
            return Err(MlError::InvalidArgument(format!(
                "n_components must be in 1..={}, got {n_components}",
                x.cols()
            )));
        }
        let d = x.cols();
        let n = x.rows() as f64;
        let mut mean = vec![0.0; d];
        for r in 0..x.rows() {
            for (c, m) in mean.iter_mut().enumerate() {
                *m += x[(r, c)];
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        // Covariance matrix (biased denominator n-1 like scikit-learn).
        let mut cov = Matrix::zeros(d, d);
        for r in 0..x.rows() {
            for i in 0..d {
                let di = x[(r, i)] - mean[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..d {
                    let dj = x[(r, j)] - mean[j];
                    cov[(i, j)] += di * dj;
                }
            }
        }
        let denom = n - 1.0;
        for i in 0..d {
            for j in i..d {
                let v = cov[(i, j)] / denom;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        let eig = cov.symmetric_eigen()?;
        let total: f64 = eig.values.iter().map(|v| v.max(0.0)).sum();
        let mut components = Matrix::zeros(n_components, d);
        let mut explained = Vec::with_capacity(n_components);
        for k in 0..n_components {
            for dd in 0..d {
                components[(k, dd)] = eig.vectors[(dd, k)];
            }
            explained.push(eig.values[k].max(0.0));
        }
        let ratio = explained
            .iter()
            .map(|&v| if total > 0.0 { v / total } else { 0.0 })
            .collect();
        Ok(Pca {
            mean,
            components,
            explained_variance: explained,
            explained_variance_ratio: ratio,
        })
    }

    /// Number of retained components.
    pub fn n_components(&self) -> usize {
        self.components.rows()
    }

    /// Per-component captured variance (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by each component.
    pub fn explained_variance_ratio(&self) -> &[f64] {
        &self.explained_variance_ratio
    }

    /// The fitted per-feature mean.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Principal axes as rows of a `(n_components, n_features)` matrix.
    pub fn components(&self) -> &Matrix {
        &self.components
    }

    /// Projects rows of `x` onto the principal components.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the feature dimension differs
    /// from the fitted data.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.mean.len() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (1, self.mean.len()),
                op: "pca_transform",
            });
        }
        let mut out = Matrix::zeros(x.rows(), self.n_components());
        for r in 0..x.rows() {
            for k in 0..self.n_components() {
                let mut s = 0.0;
                for c in 0..x.cols() {
                    s += (x[(r, c)] - self.mean[c]) * self.components[(k, c)];
                }
                out[(r, k)] = s;
            }
        }
        Ok(out)
    }

    /// Projects a single feature row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on length mismatch.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.mean.len() {
            return Err(MlError::ShapeMismatch {
                left: (1, row.len()),
                right: (1, self.mean.len()),
                op: "pca_transform_row",
            });
        }
        Ok((0..self.n_components())
            .map(|k| {
                row.iter()
                    .enumerate()
                    .map(|(c, &v)| (v - self.mean[c]) * self.components[(k, c)])
                    .sum()
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_has_one_dominant_component() {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
            vec![3.0, 3.0],
        ]);
        let p = Pca::fit(&x, 2).unwrap();
        assert!(p.explained_variance_ratio()[0] > 0.999);
        assert!(p.explained_variance_ratio()[1] < 1e-9);
    }

    #[test]
    fn transform_centers_data() {
        let x = Matrix::from_rows(&[vec![10.0, 0.0], vec![12.0, 0.0], vec![14.0, 0.0]]);
        let p = Pca::fit(&x, 1).unwrap();
        let z = p.transform(&x).unwrap();
        // Projected values are symmetric around zero.
        let sum: f64 = (0..3).map(|r| z[(r, 0)]).sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn variance_ratio_sums_to_one() {
        let x = Matrix::from_rows(&[
            vec![1.0, 5.0, 2.0],
            vec![2.0, 1.0, 9.0],
            vec![4.0, 2.0, 3.0],
            vec![8.0, 7.0, 1.0],
        ]);
        let p = Pca::fit(&x, 3).unwrap();
        let total: f64 = p.explained_variance_ratio().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Descending.
        let r = p.explained_variance_ratio();
        assert!(r[0] >= r[1] && r[1] >= r[2]);
    }

    #[test]
    fn rejects_bad_arguments() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(Pca::fit(&x, 0).is_err());
        assert!(Pca::fit(&x, 3).is_err());
        assert!(Pca::fit(&Matrix::from_rows(&[vec![1.0]]), 1).is_err());
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 1.0],
            vec![5.0, 1.0, 2.0],
        ]);
        let p = Pca::fit(&x, 2).unwrap();
        let z = p.transform(&x).unwrap();
        for r in 0..3 {
            let zr = p.transform_row(x.row(r)).unwrap();
            for k in 0..2 {
                assert!((zr[k] - z[(r, k)]).abs() < 1e-12);
            }
        }
        assert!(p.transform_row(&[1.0]).is_err());
        assert!(p.transform(&Matrix::zeros(1, 5)).is_err());
    }
}
