//! Covariance kernels for Gaussian-process regression.
//!
//! AutoBlox's GPR (§3.4 of the paper) combines a radial-basis-function
//! kernel, a rational-quadratic kernel, and a white-noise kernel; all are
//! provided here along with sum/product composition.

use crate::linalg::{sq_dist, Matrix};
use serde::{Deserialize, Serialize};

/// Smallest Gram dimension worth fanning out on the worker pool.
///
/// One row of the upper triangle at `n = 32` is ~16-32 kernel evaluations
/// (a few microseconds of sums and `exp`/`powf`), so a paired work item
/// covers ~32 evaluations and a 32x32 Gram offers 16 such items — enough to
/// amortize the worker-spawn cost measured by `bench_bo_throughput`'s gram
/// sweep (thread startup is tens of microseconds; the crossover sits between
/// n = 16, where fan-out loses, and n = 32, where it breaks even and the
/// surrogate's per-iteration refits start to dominate). Below the threshold
/// the sequential loop is used unconditionally.
pub const GRAM_PARALLEL_MIN: usize = 32;

/// A positive-semidefinite covariance function over feature vectors.
///
/// Implementors must be symmetric: `eval(a, b) == eval(b, a)`.
pub trait Kernel: std::fmt::Debug + Send + Sync {
    /// Covariance between two points.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Clones the kernel behind a fresh box, so compositions of trait
    /// objects ([`SumKernel`]) can be duplicated — required by the tuner's
    /// incremental surrogate, which extends a fitted GPR without mutating
    /// the cached copy.
    fn clone_box(&self) -> Box<dyn Kernel>;

    /// Diagonal term `k(x, x)`; kernels with a noise component add it here.
    fn diag(&self, x: &[f64]) -> f64 {
        self.eval(x, x)
    }

    /// Hyperparameters in log-space, for generic tuning.
    fn params(&self) -> Vec<f64>;

    /// Replaces hyperparameters from log-space values.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `p.len()` differs from `params().len()`.
    fn set_params(&mut self, p: &[f64]);

    /// Builds the Gram matrix `K[i][j] = k(x_i, x_j)` for row-sample `x`.
    ///
    /// Only the O(n²/2) upper triangle is evaluated and then mirrored. Once
    /// `n` reaches [`GRAM_PARALLEL_MIN`] the triangle is computed on the
    /// [`crate::parallel`] pool; because triangular rows shrink linearly,
    /// row `i` is paired with row `n-1-i` so every work item carries ~n
    /// evaluations and no worker drains early. The result is bit-identical
    /// to the sequential loop because every entry is an independent pure
    /// function of two rows.
    fn gram(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let entry = |i: usize, j: usize| {
            if i == j {
                self.diag(x.row(i))
            } else {
                self.eval(x.row(i), x.row(j))
            }
        };
        // Upper-triangle tail of row `i`: entries (i, i..n).
        let tail = |i: usize| -> Vec<f64> { (i..n).map(|j| entry(i, j)).collect() };
        fn mirror(k: &mut Matrix, i: usize, row: Vec<f64>) {
            for (off, v) in row.into_iter().enumerate() {
                let j = i + off;
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        let mut k = Matrix::zeros(n, n);
        if n >= GRAM_PARALLEL_MIN && crate::parallel::max_threads() > 1 {
            let half = n.div_ceil(2);
            let pairs = crate::parallel::parallel_map((0..half).collect(), |i| {
                let j = n - 1 - i;
                let partner = if j > i { Some((j, tail(j))) } else { None };
                (i, tail(i), partner)
            });
            for (i, row, partner) in pairs {
                mirror(&mut k, i, row);
                if let Some((j, row_j)) = partner {
                    mirror(&mut k, j, row_j);
                }
            }
        } else {
            for i in 0..n {
                mirror(&mut k, i, tail(i));
            }
        }
        k
    }
}

/// Squared-exponential (RBF) kernel
/// `k(a, b) = s² · exp(-‖a-b‖² / (2ℓ²))`.
///
/// # Examples
///
/// ```
/// use mlkit::kernel::{Kernel, Rbf};
/// let k = Rbf::new(1.0, 1.0);
/// assert!((k.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
/// assert!(k.eval(&[0.0], &[10.0]) < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rbf {
    length_scale: f64,
    variance: f64,
}

impl Rbf {
    /// Creates an RBF kernel with the given length scale and signal variance.
    ///
    /// # Panics
    ///
    /// Panics if either argument is non-positive or non-finite.
    pub fn new(length_scale: f64, variance: f64) -> Self {
        assert!(
            length_scale > 0.0 && length_scale.is_finite(),
            "length_scale must be positive"
        );
        assert!(
            variance > 0.0 && variance.is_finite(),
            "variance must be positive"
        );
        Rbf {
            length_scale,
            variance,
        }
    }

    /// Fitted length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }
}

impl Kernel for Rbf {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = sq_dist(a, b);
        self.variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<f64> {
        vec![self.length_scale.ln(), self.variance.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 2, "Rbf takes 2 hyperparameters");
        self.length_scale = p[0].exp();
        self.variance = p[1].exp();
    }
}

/// Rational-quadratic kernel
/// `k(a, b) = s² · (1 + ‖a-b‖² / (2αℓ²))^{-α}` — a scale mixture of RBF
/// kernels over length scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RationalQuadratic {
    length_scale: f64,
    alpha: f64,
    variance: f64,
}

impl RationalQuadratic {
    /// Creates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if any argument is non-positive or non-finite.
    pub fn new(length_scale: f64, alpha: f64, variance: f64) -> Self {
        assert!(length_scale > 0.0 && length_scale.is_finite());
        assert!(alpha > 0.0 && alpha.is_finite());
        assert!(variance > 0.0 && variance.is_finite());
        RationalQuadratic {
            length_scale,
            alpha,
            variance,
        }
    }
}

impl Kernel for RationalQuadratic {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let d2 = sq_dist(a, b);
        let base = 1.0 + d2 / (2.0 * self.alpha * self.length_scale * self.length_scale);
        self.variance * base.powf(-self.alpha)
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn params(&self) -> Vec<f64> {
        vec![self.length_scale.ln(), self.alpha.ln(), self.variance.ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 3, "RationalQuadratic takes 3 hyperparameters");
        self.length_scale = p[0].exp();
        self.alpha = p[1].exp();
        self.variance = p[2].exp();
    }
}

/// White-noise kernel: contributes `noise` only on the diagonal
/// (i.e. for identical points), modeling simulator measurement noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct White {
    noise: f64,
}

impl White {
    /// Creates a white kernel with the given noise variance.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or non-finite.
    pub fn new(noise: f64) -> Self {
        assert!(noise >= 0.0 && noise.is_finite(), "noise must be >= 0");
        White { noise }
    }

    /// The noise variance.
    pub fn noise(&self) -> f64 {
        self.noise
    }
}

impl Kernel for White {
    fn eval(&self, _a: &[f64], _b: &[f64]) -> f64 {
        0.0
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn diag(&self, _x: &[f64]) -> f64 {
        self.noise
    }

    fn params(&self) -> Vec<f64> {
        vec![(self.noise.max(1e-12)).ln()]
    }

    fn set_params(&mut self, p: &[f64]) {
        assert_eq!(p.len(), 1, "White takes 1 hyperparameter");
        self.noise = p[0].exp();
    }
}

/// Sum of component kernels; AutoBlox uses `Rbf + RationalQuadratic + White`.
#[derive(Debug)]
pub struct SumKernel {
    parts: Vec<Box<dyn Kernel>>,
}

impl Clone for SumKernel {
    fn clone(&self) -> Self {
        SumKernel {
            parts: self.parts.iter().map(|k| k.clone_box()).collect(),
        }
    }
}

impl SumKernel {
    /// Creates a sum kernel from component kernels.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<Box<dyn Kernel>>) -> Self {
        assert!(!parts.is_empty(), "SumKernel needs at least one component");
        SumKernel { parts }
    }

    /// The default AutoBlox regression covariance:
    /// `Rbf(ℓ, 1) + RationalQuadratic(ℓ, 1, 1) + White(noise)`.
    pub fn autoblox_default() -> Self {
        SumKernel::new(vec![
            Box::new(Rbf::new(1.0, 1.0)),
            Box::new(RationalQuadratic::new(1.0, 1.0, 1.0)),
            Box::new(White::new(1e-4)),
        ])
    }

    /// Number of component kernels.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` if there are no components (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Kernel for SumKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.parts.iter().map(|k| k.eval(a, b)).sum()
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(self.clone())
    }

    fn diag(&self, x: &[f64]) -> f64 {
        self.parts.iter().map(|k| k.diag(x)).sum()
    }

    fn params(&self) -> Vec<f64> {
        self.parts.iter().flat_map(|k| k.params()).collect()
    }

    fn set_params(&mut self, p: &[f64]) {
        let mut offset = 0;
        for k in &mut self.parts {
            let n = k.params().len();
            k.set_params(&p[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, p.len(), "hyperparameter count mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_is_one_at_zero_distance() {
        let k = Rbf::new(2.0, 3.0);
        assert!((k.eval(&[1.0, 2.0], &[1.0, 2.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_decays_with_distance() {
        let k = Rbf::new(1.0, 1.0);
        let near = k.eval(&[0.0], &[0.5]);
        let far = k.eval(&[0.0], &[2.0]);
        assert!(near > far);
        assert!(far > 0.0);
    }

    #[test]
    fn rq_approaches_rbf_for_large_alpha() {
        let rbf = Rbf::new(1.0, 1.0);
        let rq = RationalQuadratic::new(1.0, 1e6, 1.0);
        let a = [0.3, -0.4];
        let b = [0.9, 0.1];
        assert!((rbf.eval(&a, &b) - rq.eval(&a, &b)).abs() < 1e-4);
    }

    #[test]
    fn white_only_on_diagonal() {
        let k = White::new(0.5);
        assert_eq!(k.eval(&[0.0], &[0.0]), 0.0);
        assert_eq!(k.diag(&[0.0]), 0.5);
    }

    #[test]
    fn sum_kernel_adds_components() {
        let k = SumKernel::new(vec![
            Box::new(Rbf::new(1.0, 1.0)),
            Box::new(White::new(0.25)),
        ]);
        assert!((k.diag(&[0.0]) - 1.25).abs() < 1e-12);
        assert!((k.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
    }

    #[test]
    fn param_roundtrip() {
        let mut k = SumKernel::autoblox_default();
        let p = k.params();
        assert_eq!(p.len(), 2 + 3 + 1);
        let mut p2 = p.clone();
        p2[0] = (2.5f64).ln();
        k.set_params(&p2);
        let got = k.params();
        assert!((got[0] - (2.5f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let k = SumKernel::autoblox_default();
        let x = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 0.5]]);
        let g = k.gram(&x);
        assert!(g.is_symmetric(1e-12));
        for i in 0..3 {
            // Diagonal dominates off-diagonal thanks to the white noise term.
            assert!(g[(i, i)] >= g[(i, (i + 1) % 3)]);
        }
    }

    #[test]
    #[should_panic(expected = "length_scale")]
    fn rbf_rejects_zero_length_scale() {
        let _ = Rbf::new(0.0, 1.0);
    }

    #[test]
    fn sum_kernel_clone_is_independent() {
        let mut k = SumKernel::autoblox_default();
        let copy = k.clone();
        assert_eq!(copy.params(), k.params());
        let mut p = k.params();
        p[0] = (3.0f64).ln();
        k.set_params(&p);
        // The clone must not observe mutations of the original.
        assert!((copy.params()[0] - 0.0).abs() < 1e-12);
        assert!((k.params()[0] - (3.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gram_parallel_pairing_matches_sequential() {
        // Large enough to cross GRAM_PARALLEL_MIN, odd so the middle row has
        // no pairing partner.
        let n = GRAM_PARALLEL_MIN + 5;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 * 0.37, (i as f64 * 0.11).sin()])
            .collect();
        let x = Matrix::from_rows(&rows);
        let k = SumKernel::autoblox_default();
        crate::parallel::set_max_threads(4);
        let par = k.gram(&x);
        crate::parallel::set_max_threads(0);
        let mut seq = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                seq[(i, j)] = if i == j {
                    k.diag(x.row(i))
                } else {
                    k.eval(x.row(i), x.row(j))
                };
            }
        }
        assert_eq!(par, seq, "fan-out must be bit-identical to sequential");
    }
}
