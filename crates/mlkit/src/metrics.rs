//! Clustering quality metrics: silhouette score and adjusted Rand index.
//!
//! Used by the clustering ablations to compare window/PCA settings beyond
//! raw purity, and by tests to validate that the workload clusters are
//! well-separated (Figure 2).

use crate::error::{MlError, Result};
use crate::linalg::{sq_dist, Matrix};

/// Mean silhouette coefficient over all samples, in `[-1, 1]`.
///
/// For each sample, `a` is its mean distance to its own cluster's other
/// members and `b` the smallest mean distance to another cluster; the
/// silhouette is `(b - a) / max(a, b)`. Values near 1 indicate compact,
/// well-separated clusters.
///
/// # Errors
///
/// - [`MlError::ShapeMismatch`] if `labels.len() != x.rows()`;
/// - [`MlError::InsufficientData`] if fewer than 2 clusters are present.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// use mlkit::metrics::silhouette_score;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ]);
/// let s = silhouette_score(&x, &[0, 0, 1, 1])?;
/// assert!(s > 0.9);
/// # Ok(())
/// # }
/// ```
pub fn silhouette_score(x: &Matrix, labels: &[usize]) -> Result<f64> {
    if labels.len() != x.rows() {
        return Err(MlError::ShapeMismatch {
            left: x.shape(),
            right: (labels.len(), 1),
            op: "silhouette_score",
        });
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    if counts.iter().filter(|&&c| c > 0).count() < 2 {
        return Err(MlError::InsufficientData(
            "silhouette needs at least two non-empty clusters".into(),
        ));
    }
    let n = x.rows();
    let mut total = 0.0;
    let mut scored = 0usize;
    for i in 0..n {
        // Mean distance from i to every cluster.
        let mut sums = vec![0.0; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            sums[labels[j]] += sq_dist(x.row(i), x.row(j)).sqrt();
        }
        let own = labels[i];
        if counts[own] < 2 {
            // Singleton clusters contribute silhouette 0 by convention.
            scored += 1;
            continue;
        }
        let a = sums[own] / (counts[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
        scored += 1;
    }
    Ok(total / scored.max(1) as f64)
}

/// Adjusted Rand index between two labelings, in `[-1, 1]` (1 = identical
/// partitions, ~0 = random agreement). Labels need not use the same ids.
///
/// # Errors
///
/// Returns [`MlError::ShapeMismatch`] if the labelings differ in length and
/// [`MlError::InsufficientData`] for empty input.
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(MlError::ShapeMismatch {
            left: (a.len(), 1),
            right: (b.len(), 1),
            op: "adjusted_rand_index",
        });
    }
    if a.is_empty() {
        return Err(MlError::InsufficientData("empty labelings".into()));
    }
    let ka = a.iter().copied().max().unwrap_or(0) + 1;
    let kb = b.iter().copied().max().unwrap_or(0) + 1;
    let mut table = vec![vec![0u64; kb]; ka];
    for (&x, &y) in a.iter().zip(b) {
        table[x][y] += 1;
    }
    let choose2 = |v: u64| -> f64 { (v * v.saturating_sub(1)) as f64 / 2.0 };
    let sum_ij: f64 = table.iter().flatten().map(|&v| choose2(v)).sum();
    let sum_a: f64 = table
        .iter()
        .map(|row| choose2(row.iter().sum::<u64>()))
        .sum();
    let sum_b: f64 = (0..kb)
        .map(|j| choose2(table.iter().map(|row| row[j]).sum::<u64>()))
        .sum();
    let total = choose2(a.len() as u64);
    let expected = sum_a * sum_b / total;
    let max_index = (sum_a + sum_b) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        return Ok(1.0); // degenerate: both partitions trivial
    }
    Ok((sum_ij - expected) / (max_index - expected))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.2],
            vec![5.0, 5.0],
            vec![5.1, 5.2],
            vec![5.2, 5.1],
        ]);
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn silhouette_high_for_separated_blobs() {
        let (x, labels) = blobs();
        let s = silhouette_score(&x, &labels).unwrap();
        assert!(s > 0.9, "{s}");
    }

    #[test]
    fn silhouette_low_for_shuffled_labels() {
        let (x, _) = blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette_score(&x, &bad).unwrap();
        assert!(s < 0.2, "{s}");
    }

    #[test]
    fn silhouette_handles_singletons() {
        let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![9.0]]);
        let s = silhouette_score(&x, &[0, 0, 1]).unwrap();
        assert!(s.is_finite());
    }

    #[test]
    fn silhouette_errors() {
        let (x, _) = blobs();
        assert!(silhouette_score(&x, &[0, 0]).is_err());
        assert!(silhouette_score(&x, &[0; 6]).is_err());
    }

    #[test]
    fn ari_identical_partitions() {
        let a = vec![0, 0, 1, 1, 2, 2];
        assert!((adjusted_rand_index(&a, &a).unwrap() - 1.0).abs() < 1e-12);
        // Renamed labels still count as identical.
        let renamed = vec![2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&a, &renamed).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ari_near_zero_for_random() {
        let a = vec![0, 1, 0, 1, 0, 1, 0, 1];
        let b = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let s = adjusted_rand_index(&a, &b).unwrap();
        assert!(s.abs() < 0.5, "{s}");
    }

    #[test]
    fn ari_errors() {
        assert!(adjusted_rand_index(&[0, 1], &[0]).is_err());
        assert!(adjusted_rand_index(&[], &[]).is_err());
    }

    #[test]
    fn ari_degenerate_single_cluster() {
        let a = vec![0, 0, 0];
        assert_eq!(adjusted_rand_index(&a, &a).unwrap(), 1.0);
    }
}
