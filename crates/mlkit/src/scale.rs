//! Feature scaling utilities (z-score standardization, min-max scaling).

use crate::error::{MlError, Result};
use crate::linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Per-column z-score standardizer: `x' = (x - mean) / std`.
///
/// Columns with zero variance are passed through centered but unscaled so
/// the transform never divides by zero.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// use mlkit::scale::StandardScaler;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![1.0], vec![3.0]]);
/// let scaler = StandardScaler::fit(&x)?;
/// let t = scaler.transform(&x)?;
/// assert!((t[(0, 0)] + 1.0).abs() < 1e-12);
/// assert!((t[(1, 0)] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Learns per-column mean and (population) standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InsufficientData`] if `x` has no rows.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::InsufficientData(
                "cannot fit a scaler on zero samples".into(),
            ));
        }
        let n = x.rows() as f64;
        let mut means = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (c, m) in means.iter_mut().enumerate() {
                *m += x[(r, c)];
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; x.cols()];
        for r in 0..x.rows() {
            for (c, v) in vars.iter_mut().enumerate() {
                let d = x[(r, c)] - means[c];
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(StandardScaler { means, stds })
    }

    /// Per-column means learned by [`StandardScaler::fit`].
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations learned by [`StandardScaler::fit`]
    /// (zero-variance columns report 1.0).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the column count differs from
    /// the fitted data.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.means.len() {
            return Err(MlError::ShapeMismatch {
                left: (x.rows(), x.cols()),
                right: (1, self.means.len()),
                op: "scaler_transform",
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] = (out[(r, c)] - self.means[c]) / self.stds[c];
            }
        }
        Ok(out)
    }

    /// Applies the learned transform to a single row vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on length mismatch.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(MlError::ShapeMismatch {
                left: (1, row.len()),
                right: (1, self.means.len()),
                op: "scaler_transform_row",
            });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(c, &v)| (v - self.means[c]) / self.stds[c])
            .collect())
    }

    /// Undoes the transform on a single row.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on length mismatch.
    pub fn inverse_transform_row(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(MlError::ShapeMismatch {
                left: (1, row.len()),
                right: (1, self.means.len()),
                op: "scaler_inverse_transform_row",
            });
        }
        Ok(row
            .iter()
            .enumerate()
            .map(|(c, &v)| v * self.stds[c] + self.means[c])
            .collect())
    }
}

/// Per-column min-max scaler mapping each feature into `[0, 1]`.
///
/// Constant columns map to 0.0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Learns per-column minimum and range.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InsufficientData`] if `x` has no rows.
    pub fn fit(x: &Matrix) -> Result<Self> {
        if x.rows() == 0 {
            return Err(MlError::InsufficientData(
                "cannot fit a scaler on zero samples".into(),
            ));
        }
        let mut mins = vec![f64::INFINITY; x.cols()];
        let mut maxs = vec![f64::NEG_INFINITY; x.cols()];
        for r in 0..x.rows() {
            for c in 0..x.cols() {
                mins[c] = mins[c].min(x[(r, c)]);
                maxs[c] = maxs[c].max(x[(r, c)]);
            }
        }
        let ranges = mins
            .iter()
            .zip(&maxs)
            .map(|(lo, hi)| {
                let r = hi - lo;
                if r > 0.0 {
                    r
                } else {
                    1.0
                }
            })
            .collect();
        Ok(MinMaxScaler { mins, ranges })
    }

    /// Applies the learned transform.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if the column count differs from
    /// the fitted data.
    pub fn transform(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.mins.len() {
            return Err(MlError::ShapeMismatch {
                left: (x.rows(), x.cols()),
                right: (1, self.mins.len()),
                op: "minmax_transform",
            });
        }
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] = (out[(r, c)] - self.mins[c]) / self.ranges[c];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]]);
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        for c in 0..2 {
            let mean: f64 = (0..3).map(|r| t[(r, c)]).sum::<f64>() / 3.0;
            let var: f64 = (0..3).map(|r| t[(r, c)].powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_scaler_constant_column() {
        let x = Matrix::from_rows(&[vec![7.0], vec![7.0]]);
        let s = StandardScaler::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(1, 0)], 0.0);
    }

    #[test]
    fn standard_scaler_roundtrip_row() {
        let x = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 8.0]]);
        let s = StandardScaler::fit(&x).unwrap();
        let row = [2.5, 4.0];
        let t = s.transform_row(&row).unwrap();
        let back = s.inverse_transform_row(&t).unwrap();
        assert!((back[0] - 2.5).abs() < 1e-12);
        assert!((back[1] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn standard_scaler_errors() {
        assert!(StandardScaler::fit(&Matrix::zeros(0, 2)).is_err());
        let s = StandardScaler::fit(&Matrix::zeros(2, 2)).unwrap();
        assert!(s.transform(&Matrix::zeros(1, 3)).is_err());
        assert!(s.transform_row(&[0.0]).is_err());
        assert!(s.inverse_transform_row(&[0.0]).is_err());
    }

    #[test]
    fn minmax_bounds() {
        let x = Matrix::from_rows(&[vec![2.0, -1.0], vec![4.0, 3.0], vec![3.0, 1.0]]);
        let s = MinMaxScaler::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        for r in 0..3 {
            for c in 0..2 {
                assert!((0.0..=1.0).contains(&t[(r, c)]));
            }
        }
        assert_eq!(t[(0, 0)], 0.0);
        assert_eq!(t[(1, 0)], 1.0);
    }

    #[test]
    fn minmax_constant_column_and_errors() {
        let x = Matrix::from_rows(&[vec![5.0], vec![5.0]]);
        let s = MinMaxScaler::fit(&x).unwrap();
        let t = s.transform(&x).unwrap();
        assert_eq!(t[(0, 0)], 0.0);
        assert!(MinMaxScaler::fit(&Matrix::zeros(0, 1)).is_err());
        assert!(s.transform(&Matrix::zeros(1, 2)).is_err());
    }
}
