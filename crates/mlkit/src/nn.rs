//! A small multilayer perceptron with minibatch SGD + momentum.
//!
//! The paper motivates its Bayesian-optimization model by comparison with
//! deep-neural-network approaches ("BO can deliver similar performance
//! compared to deep neural networks ... it sometimes performs even faster
//! than DNNs like deep Q-networks", §3.2). This module provides the DNN
//! side of that comparison: a compact MLP regression model usable as a
//! drop-in grade surrogate in the tuner's search loop.

use crate::error::{MlError, Result};
use crate::linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Activation function applied by hidden layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (output layers).
    Linear,
}

impl Activation {
    fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    fn derivative(self, pre: f64) -> f64 {
        match self {
            Activation::Relu => {
                if pre > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - pre.tanh().powi(2),
            Activation::Linear => 1.0,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Layer {
    /// Weight matrix `(outputs, inputs)`.
    w: Matrix,
    b: Vec<f64>,
    activation: Activation,
    // Momentum buffers.
    vw: Matrix,
    vb: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // He-style initialization scaled by fan-in.
        let scale = (2.0 / inputs as f64).sqrt();
        let data: Vec<f64> = (0..inputs * outputs)
            .map(|_| (rng.gen::<f64>() * 2.0 - 1.0) * scale)
            .collect();
        Layer {
            w: Matrix::from_vec(outputs, inputs, data),
            b: vec![0.0; outputs],
            activation,
            vw: Matrix::zeros(outputs, inputs),
            vb: vec![0.0; outputs],
        }
    }

    /// Returns `(pre_activation, post_activation)`.
    fn forward(&self, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let pre: Vec<f64> = (0..self.w.rows())
            .map(|o| {
                self.b[o]
                    + self
                        .w
                        .row(o)
                        .iter()
                        .zip(input)
                        .map(|(w, x)| w * x)
                        .sum::<f64>()
            })
            .collect();
        let post = pre.iter().map(|&p| self.activation.apply(p)).collect();
        (pre, post)
    }
}

/// Training hyperparameters for [`Mlp::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainOptions {
    /// Training epochs over the whole set.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Minibatch size.
    pub batch_size: usize,
    /// L2 weight decay.
    pub weight_decay: f64,
    /// Shuffling/initialization seed.
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        TrainOptions {
            epochs: 200,
            learning_rate: 0.01,
            momentum: 0.9,
            batch_size: 16,
            weight_decay: 1e-4,
            seed: 0x11A9,
        }
    }
}

/// A feed-forward regression network with scalar output.
///
/// # Examples
///
/// ```
/// use mlkit::linalg::Matrix;
/// use mlkit::nn::{Mlp, TrainOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Learn y = 2x over [0, 1].
/// let x = Matrix::from_rows(&(0..20).map(|i| vec![i as f64 / 20.0]).collect::<Vec<_>>());
/// let y: Vec<f64> = (0..20).map(|i| 2.0 * i as f64 / 20.0).collect();
/// let mut net = Mlp::new(&[1, 8, 1], 42)?;
/// net.fit(&x, &y, TrainOptions::default())?;
/// assert!((net.predict(&[0.5])? - 1.0).abs() < 0.2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Layer>,
}

impl Mlp {
    /// Builds a network with the given layer widths, e.g. `[in, 32, 16, 1]`.
    /// Hidden layers use ReLU; the output layer is linear.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidArgument`] when fewer than two widths are
    /// given, the output width is not 1, or a width is zero.
    pub fn new(widths: &[usize], seed: u64) -> Result<Self> {
        if widths.len() < 2 {
            return Err(MlError::InvalidArgument(
                "an MLP needs at least input and output widths".into(),
            ));
        }
        if *widths.last().expect("nonempty") != 1 {
            return Err(MlError::InvalidArgument(
                "this regression MLP has a scalar output".into(),
            ));
        }
        if widths.contains(&0) {
            return Err(MlError::InvalidArgument(
                "layer widths must be positive".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = widths
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == widths.len() {
                    Activation::Linear
                } else {
                    Activation::Relu
                };
                Layer::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Ok(Mlp { layers })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.layers.first().map_or(0, |l| l.w.cols())
    }

    /// Predicts the scalar output for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] on input-length mismatch.
    pub fn predict(&self, input: &[f64]) -> Result<f64> {
        if input.len() != self.input_dim() {
            return Err(MlError::ShapeMismatch {
                left: (1, input.len()),
                right: (1, self.input_dim()),
                op: "mlp_predict",
            });
        }
        let mut cur = input.to_vec();
        for layer in &self.layers {
            cur = layer.forward(&cur).1;
        }
        Ok(cur[0])
    }

    /// Trains with minibatch SGD on mean-squared error; returns the final
    /// epoch's mean loss.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::ShapeMismatch`] if `y.len() != x.rows()` or the
    /// feature dimension differs, and [`MlError::InsufficientData`] for an
    /// empty training set.
    pub fn fit(&mut self, x: &Matrix, y: &[f64], opts: TrainOptions) -> Result<f64> {
        if x.rows() == 0 {
            return Err(MlError::InsufficientData("empty training set".into()));
        }
        if y.len() != x.rows() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (y.len(), 1),
                op: "mlp_fit",
            });
        }
        if x.cols() != self.input_dim() {
            return Err(MlError::ShapeMismatch {
                left: x.shape(),
                right: (1, self.input_dim()),
                op: "mlp_fit",
            });
        }
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let batch = opts.batch_size.max(1);
        let mut last_loss = f64::INFINITY;
        for _ in 0..opts.epochs {
            // Fisher-Yates shuffle.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                epoch_loss += self.train_batch(x, y, chunk, &opts);
            }
            last_loss = epoch_loss / x.rows() as f64;
        }
        Ok(last_loss)
    }

    /// Accumulates gradients over one minibatch and applies a momentum step.
    /// Returns the summed squared error of the batch.
    fn train_batch(&mut self, x: &Matrix, y: &[f64], idx: &[usize], opts: &TrainOptions) -> f64 {
        let n_layers = self.layers.len();
        let mut grad_w: Vec<Matrix> = self
            .layers
            .iter()
            .map(|l| Matrix::zeros(l.w.rows(), l.w.cols()))
            .collect();
        let mut grad_b: Vec<Vec<f64>> = self.layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
        let mut loss = 0.0;

        for &sample in idx {
            // Forward pass, caching pre-activations and activations.
            let mut activations: Vec<Vec<f64>> = vec![x.row(sample).to_vec()];
            let mut pres: Vec<Vec<f64>> = Vec::with_capacity(n_layers);
            for layer in &self.layers {
                let (pre, post) = layer.forward(activations.last().expect("nonempty"));
                pres.push(pre);
                activations.push(post);
            }
            let out = activations.last().expect("nonempty")[0];
            let err = out - y[sample];
            loss += err * err;

            // Backward pass.
            let mut delta = vec![2.0 * err];
            for li in (0..n_layers).rev() {
                let layer = &self.layers[li];
                let input = &activations[li];
                // d(pre) = delta * act'(pre)
                let dpre: Vec<f64> = delta
                    .iter()
                    .zip(&pres[li])
                    .map(|(d, &p)| d * layer.activation.derivative(p))
                    .collect();
                for (o, &dp) in dpre.iter().enumerate() {
                    grad_b[li][o] += dp;
                    for (i, &inp) in input.iter().enumerate() {
                        grad_w[li][(o, i)] += dp * inp;
                    }
                }
                if li > 0 {
                    // Propagate to the previous layer's outputs.
                    let mut prev = vec![0.0; layer.w.cols()];
                    for (o, &dp) in dpre.iter().enumerate() {
                        for (i, p) in prev.iter_mut().enumerate() {
                            *p += dp * layer.w[(o, i)];
                        }
                    }
                    delta = prev;
                }
            }
        }

        // Momentum update.
        let scale = opts.learning_rate / idx.len() as f64;
        for (li, layer) in self.layers.iter_mut().enumerate() {
            for o in 0..layer.w.rows() {
                for i in 0..layer.w.cols() {
                    let g = grad_w[li][(o, i)] * scale + opts.weight_decay * layer.w[(o, i)];
                    let v = opts.momentum * layer.vw[(o, i)] - g;
                    layer.vw[(o, i)] = v;
                    layer.w[(o, i)] += v;
                }
                let g = grad_b[li][o] * scale;
                let v = opts.momentum * layer.vb[o] - g;
                layer.vb[o] = v;
                layer.b[o] += v;
            }
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let x = Matrix::from_rows(&(0..32).map(|i| vec![i as f64 / 32.0]).collect::<Vec<_>>());
        let y: Vec<f64> = (0..32).map(|i| 3.0 * i as f64 / 32.0 - 1.0).collect();
        let mut net = Mlp::new(&[1, 8, 1], 7).unwrap();
        let loss = net.fit(&x, &y, TrainOptions::default()).unwrap();
        assert!(loss < 0.05, "loss {loss}");
        assert!((net.predict(&[0.5]).unwrap() - 0.5).abs() < 0.25);
    }

    #[test]
    fn learns_xor_shape() {
        // XOR requires a hidden layer: proves backprop through ReLU works.
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut best_correct = 0;
        // ReLU nets can die on bad seeds; any seed solving XOR proves the
        // machinery.
        for seed in 0..5 {
            let mut net = Mlp::new(&[2, 8, 1], seed).unwrap();
            net.fit(
                &x,
                &y,
                TrainOptions {
                    epochs: 2000,
                    learning_rate: 0.05,
                    batch_size: 4,
                    weight_decay: 0.0,
                    ..TrainOptions::default()
                },
            )
            .unwrap();
            let correct = x
                .as_slice()
                .chunks(2)
                .zip(&y)
                .filter(|(row, &target)| (net.predict(row).unwrap() - target).abs() < 0.5)
                .count();
            best_correct = best_correct.max(correct);
            if best_correct == 4 {
                break;
            }
        }
        assert_eq!(best_correct, 4);
    }

    #[test]
    fn nonlinear_fit_beats_mean_predictor() {
        let x = Matrix::from_rows(
            &(0..40)
                .map(|i| vec![i as f64 / 40.0 * std::f64::consts::TAU])
                .collect::<Vec<_>>(),
        );
        let y: Vec<f64> = (0..40)
            .map(|i| (i as f64 / 40.0 * std::f64::consts::TAU).sin())
            .collect();
        let mut net = Mlp::new(&[1, 16, 16, 1], 3).unwrap();
        let loss = net
            .fit(
                &x,
                &y,
                TrainOptions {
                    epochs: 800,
                    learning_rate: 0.02,
                    ..TrainOptions::default()
                },
            )
            .unwrap();
        // Mean predictor MSE of sin over a period is 0.5.
        assert!(loss < 0.25, "loss {loss}");
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(Mlp::new(&[3], 0).is_err());
        assert!(Mlp::new(&[3, 4, 2], 0).is_err());
        assert!(Mlp::new(&[3, 0, 1], 0).is_err());
        let mut net = Mlp::new(&[2, 4, 1], 0).unwrap();
        assert!(net.predict(&[1.0]).is_err());
        let x = Matrix::from_rows(&[vec![0.0, 0.0]]);
        assert!(net.fit(&x, &[1.0, 2.0], TrainOptions::default()).is_err());
        let x3 = Matrix::from_rows(&[vec![0.0, 0.0, 0.0]]);
        assert!(net.fit(&x3, &[1.0], TrainOptions::default()).is_err());
        assert!(net
            .fit(&Matrix::zeros(0, 2), &[], TrainOptions::default())
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Matrix::from_rows(&[vec![0.1], vec![0.9]]);
        let y = [0.2, 1.8];
        let mut a = Mlp::new(&[1, 4, 1], 5).unwrap();
        let mut b = Mlp::new(&[1, 4, 1], 5).unwrap();
        a.fit(&x, &y, TrainOptions::default()).unwrap();
        b.fit(&x, &y, TrainOptions::default()).unwrap();
        assert_eq!(a.predict(&[0.4]).unwrap(), b.predict(&[0.4]).unwrap());
        assert_eq!(a.input_dim(), 1);
    }
}
