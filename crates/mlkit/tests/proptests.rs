//! Property-based tests for the numerical core: factorizations must invert,
//! models must satisfy their defining equations on arbitrary valid input.

use mlkit::gpr::GprBuilder;
use mlkit::kmeans::KMeans;
use mlkit::linalg::{dot, manhattan, sq_dist, Matrix};
use mlkit::pca::Pca;
use mlkit::ridge::Ridge;
use mlkit::scale::StandardScaler;
use proptest::prelude::*;

fn arb_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len)
}

fn arb_matrix(
    rows: std::ops::Range<usize>,
    cols: std::ops::Range<usize>,
) -> impl Strategy<Value = Matrix> {
    (rows, cols).prop_flat_map(|(r, c)| {
        prop::collection::vec(-50.0f64..50.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Builds a random symmetric positive-definite matrix as `B B^T + n I`.
fn arb_spd(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
        let b = Matrix::from_vec(n, n, data);
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cholesky_solution_satisfies_the_system(a in arb_spd(5), b in arb_vector(5)) {
        let chol = a.cholesky().unwrap();
        let x = chol.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (lhs, rhs) in back.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-6, "{lhs} vs {rhs}");
        }
    }

    #[test]
    fn cholesky_factor_reconstructs(a in arb_spd(4)) {
        let chol = a.cholesky().unwrap();
        let rec = chol.factor().matmul(&chol.factor().transpose()).unwrap();
        for r in 0..4 {
            for c in 0..4 {
                prop_assert!((rec[(r, c)] - a[(r, c)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigen_reconstructs_symmetric_matrices(a in arb_spd(4)) {
        let e = a.symmetric_eigen().unwrap();
        let n = 4;
        let mut d = Matrix::zeros(n, n);
        for i in 0..n {
            d[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&d).unwrap().matmul(&e.vectors.transpose()).unwrap();
        for r in 0..n {
            for c in 0..n {
                prop_assert!((rec[(r, c)] - a[(r, c)]).abs() < 1e-6);
            }
        }
        // Eigenvalues of an SPD matrix are positive and sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(e.values.iter().all(|&v| v > -1e-9));
    }

    #[test]
    fn matmul_is_associative(a in arb_matrix(1..4, 1..4), bdata in prop::collection::vec(-5.0f64..5.0, 16), cdata in prop::collection::vec(-5.0f64..5.0, 16)) {
        let k = a.cols();
        let b = Matrix::from_vec(k, 4, bdata[..k * 4].to_vec());
        let c = Matrix::from_vec(4, 2, cdata[..8].to_vec());
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for r in 0..left.rows() {
            for cc in 0..left.cols() {
                prop_assert!((left[(r, cc)] - right[(r, cc)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn distances_are_consistent(a in arb_vector(6), b in arb_vector(6)) {
        prop_assert!(sq_dist(&a, &b) >= 0.0);
        prop_assert!((sq_dist(&a, &b) - sq_dist(&b, &a)).abs() < 1e-9);
        prop_assert!(manhattan(&a, &b) >= 0.0);
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-9);
        // Cauchy–Schwarz.
        prop_assert!(dot(&a, &b).powi(2) <= dot(&a, &a) * dot(&b, &b) + 1e-6);
    }

    #[test]
    fn scaler_transform_is_invertible(x in arb_matrix(2..10, 1..5)) {
        let s = StandardScaler::fit(&x).unwrap();
        for r in 0..x.rows() {
            let t = s.transform_row(x.row(r)).unwrap();
            let back = s.inverse_transform_row(&t).unwrap();
            for (orig, rec) in x.row(r).iter().zip(&back) {
                prop_assert!((orig - rec).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn pca_projection_preserves_total_variance_bound(x in arb_matrix(4..12, 2..5)) {
        let dims = x.cols();
        let p = Pca::fit(&x, dims).unwrap();
        let total: f64 = p.explained_variance_ratio().iter().sum();
        prop_assert!(total <= 1.0 + 1e-9);
        // Full-rank PCA keeps (almost) everything.
        prop_assert!(total > 0.99 || p.explained_variance().iter().sum::<f64>() < 1e-12);
    }

    #[test]
    fn kmeans_assigns_to_nearest_centroid(x in arb_matrix(6..20, 1..4), k in 1usize..4) {
        prop_assume!(x.rows() >= k);
        let km = KMeans::fit(&x, k, 42).unwrap();
        let labels = km.predict(&x).unwrap();
        for (r, &label) in labels.iter().enumerate() {
            let assigned = sq_dist(x.row(r), km.centroids().row(label));
            for ci in 0..k {
                let other = sq_dist(x.row(r), km.centroids().row(ci));
                prop_assert!(assigned <= other + 1e-9);
            }
        }
    }

    #[test]
    fn ridge_residuals_shrink_with_less_regularization(x in arb_matrix(8..16, 1..3), noise in arb_vector(16)) {
        let y: Vec<f64> = (0..x.rows())
            .map(|r| 2.0 * x.row(r)[0] + noise[r] * 0.01)
            .collect();
        let loose = Ridge::fit(&x, &y, 1e-8).unwrap();
        let tight = Ridge::fit(&x, &y, 1e4).unwrap();
        let r2_loose = loose.score(&x, &y).unwrap();
        let r2_tight = tight.score(&x, &y).unwrap();
        prop_assert!(r2_loose >= r2_tight - 1e-9);
    }

    #[test]
    fn gpr_variance_nonnegative_and_interpolation_close(ys in prop::collection::vec(-5.0f64..5.0, 5)) {
        let xs = Matrix::from_rows(&(0..5).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let gp = GprBuilder::new().optimize_rounds(0).fit(&xs, &ys).unwrap();
        for (i, &yi) in ys.iter().enumerate() {
            let p = gp.predict(xs.row(i)).unwrap();
            prop_assert!(p.variance >= 0.0);
            prop_assert!((p.mean - yi).abs() < 1.0, "{} vs {}", p.mean, yi);
        }
    }

    /// The incremental rank-1 update must agree with a from-scratch
    /// frozen-hyperparameter refit on the grown training set: same posterior
    /// within 1e-9 at arbitrary query points.
    #[test]
    fn gpr_extend_matches_from_scratch_refit(
        ys in prop::collection::vec(-5.0f64..5.0, 7),
        y_new in -5.0f64..5.0,
        x_new_off in 0.1f64..0.9,
        queries in prop::collection::vec(-2.0f64..10.0, 8),
    ) {
        // Distinct 1-D grid points, with the new sample strictly between
        // grid nodes so no training point is duplicated.
        let xs = Matrix::from_rows(&(0..7).map(|i| vec![i as f64]).collect::<Vec<_>>());
        let base = GprBuilder::new().optimize_rounds(0).fit(&xs, &ys).unwrap();
        let x_new = [6.0 + x_new_off];
        let extended = base.extend(&x_new, y_new).unwrap();

        let mut xs2 = xs.clone();
        xs2.push_row(&x_new);
        let mut ys2 = ys.clone();
        ys2.push(y_new);
        let refit = GprBuilder::new()
            .kernel(base.kernel().clone())
            .optimize_rounds(0)
            .fit(&xs2, &ys2)
            .unwrap();

        prop_assert!((extended.mean() - refit.mean()).abs() < 1e-9);
        prop_assert!(
            (extended.log_marginal_likelihood() - refit.log_marginal_likelihood()).abs() < 1e-9
        );
        for q in &queries {
            let a = extended.predict(&[*q]).unwrap();
            let b = refit.predict(&[*q]).unwrap();
            prop_assert!((a.mean - b.mean).abs() < 1e-9, "mean {} vs {}", a.mean, b.mean);
            prop_assert!(
                (a.variance - b.variance).abs() < 1e-9,
                "variance {} vs {}", a.variance, b.variance
            );
        }
    }
}
