//! End-to-end integration: trace generation → clustering → AutoDB →
//! tuning → recall, across all workspace crates.

use autoblox_repro::autoblox::constraints::Constraints;
use autoblox_repro::autoblox::framework::{AutoBlox, AutoBloxOptions, Recommendation};
use autoblox_repro::autoblox::tuner::TunerOptions;
use autoblox_repro::autoblox::validator::{Validator, ValidatorOptions};
use autoblox_repro::autodb::Store;
use autoblox_repro::iotrace::gen::WorkloadKind;
use autoblox_repro::iotrace::window::WindowOptions;
use autoblox_repro::iotrace::Trace;
use autoblox_repro::ssdsim::config::presets;

fn quick_validator() -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: 400,
        ..Default::default()
    })
}

fn quick_options() -> AutoBloxOptions {
    AutoBloxOptions {
        tuner: TunerOptions {
            max_iterations: 4,
            sgd_iterations: 2,
            non_target: vec![],
            ..TunerOptions::default()
        },
        window: WindowOptions { window_len: 500 },
        ..Default::default()
    }
}

#[test]
fn learn_store_recall_roundtrip_with_persistence() {
    let dir = std::env::temp_dir().join(format!("autoblox-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("autodb.db");
    std::fs::remove_file(&db_path).ok();

    let v = quick_validator();
    let kinds = [WorkloadKind::WebSearch, WorkloadKind::Database];
    let train: Vec<Trace> = kinds.iter().map(|k| k.spec().generate(3_000, 5)).collect();

    let learned_cluster;
    {
        let db = Store::open(&db_path).unwrap();
        let mut fw = AutoBlox::new(Constraints::paper_default(), &v, db, quick_options());
        fw.train_clustering(&train, 2).unwrap();
        let t = WorkloadKind::Database.spec().generate(2_000, 77);
        match fw.recommend(&t, &presets::intel_750()) {
            Recommendation::Learned { cluster, .. } => learned_cluster = cluster,
            other => panic!("expected Learned, got {other:?}"),
        }
        fw.db().flush().unwrap();
    }

    // Re-open the database in a new framework instance: the learned
    // configuration must be recalled without touching the simulator.
    {
        let db = Store::open(&db_path).unwrap();
        assert!(!db.is_empty(), "AutoDB must persist learned configs");
        let mut fw = AutoBlox::new(Constraints::paper_default(), &v, db, quick_options());
        fw.train_clustering(&train, 2).unwrap();
        let runs_before = v.simulator_runs();
        let t2 = WorkloadKind::Database.spec().generate(2_000, 909);
        match fw.recommend(&t2, &presets::intel_750()) {
            Recommendation::Recalled {
                cluster, stored, ..
            } => {
                assert_eq!(cluster, learned_cluster);
                stored.config.validate().unwrap();
            }
            other => panic!("expected Recalled, got {other:?}"),
        }
        assert_eq!(v.simulator_runs(), runs_before);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn learned_configuration_beats_or_matches_reference_everywhere_it_claims() {
    let v = quick_validator();
    let constraints = Constraints::paper_default();
    let opts = TunerOptions {
        max_iterations: 6,
        non_target: vec![WorkloadKind::WebSearch],
        ..TunerOptions::default()
    };
    let tuner = autoblox_repro::autoblox::Tuner::new(constraints, &v, opts);
    let reference = presets::intel_750();
    let out = tuner.tune(WorkloadKind::CloudStorage, &reference, &[], None);

    // The grade is relative to the reference (grade 0); tuning must never
    // return something worse than the reference it was seeded with.
    assert!(out.best.grade >= 0.0);
    // And the claimed measurement must reproduce when re-simulated.
    let again = v.evaluate(&out.best.config, WorkloadKind::CloudStorage);
    assert_eq!(again, out.best.measurement);
    // The learned configuration must satisfy every structural constraint.
    assert_eq!(constraints.check_structural(&out.best.config), Ok(()));
}

#[test]
fn framework_handles_all_thirteen_workload_categories() {
    // Every generator must produce simulate-able traces.
    let v = quick_validator();
    for kind in WorkloadKind::STUDIED.iter().chain(WorkloadKind::NEW.iter()) {
        let m = v.evaluate(&presets::intel_750(), *kind);
        assert!(m.latency_ns > 0.0, "{kind}: zero latency");
        assert!(m.throughput_bps > 0.0, "{kind}: zero throughput");
        assert!(
            m.power_w > 0.0 && m.power_w < 100.0,
            "{kind}: power {}",
            m.power_w
        );
    }
}
