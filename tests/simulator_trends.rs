//! Cross-crate integration tests on simulator trends: generated workloads
//! driven through the full device model must exhibit the physical
//! monotonicities the tuner relies on.

use autoblox_repro::iotrace::gen::WorkloadKind;
use autoblox_repro::iotrace::Trace;
use autoblox_repro::ssdsim::config::{presets, PlaneAllocationScheme, SsdConfig};
use autoblox_repro::ssdsim::{SimReport, Simulator};

fn run(cfg: SsdConfig, kind: WorkloadKind, n: usize) -> SimReport {
    let trace = kind.spec().generate(n, 0xCAFE);
    let mut sim = Simulator::new(cfg);
    sim.warm_up(0.5);
    sim.run(&trace)
}

/// Saturated replay with a final drain: returns the sustained throughput in
/// bytes/s plus the raw report.
fn saturated(cfg: SsdConfig, kind: WorkloadKind, n: usize) -> (f64, SimReport) {
    let trace = kind.spec().generate(n, 0xCAFE);
    let compressed = Trace::from_events(
        trace.name(),
        trace
            .events()
            .iter()
            .map(|e| autoblox_repro::iotrace::TraceEvent::new(0, e.lba, e.size_bytes, e.op))
            .collect(),
    );
    let mut sim = Simulator::new(cfg);
    sim.warm_up(0.5);
    let report = sim.run(&compressed);
    let drained = sim.drain(report.makespan_ns).max(1);
    (report.host_bytes as f64 / (drained as f64 / 1e9), report)
}

#[test]
fn slower_flash_is_slower_end_to_end() {
    let fast = presets::intel_750();
    let slow = SsdConfig {
        read_latency_ns: fast.read_latency_ns * 3,
        ..fast.clone()
    };
    let rf = run(fast, WorkloadKind::WebSearch, 2_000);
    let rs = run(slow, WorkloadKind::WebSearch, 2_000);
    assert!(rs.read_latency.mean_ns > rf.read_latency.mean_ns * 1.5);
}

#[test]
fn channel_bandwidth_bounds_streaming_throughput() {
    let slow_bus = SsdConfig {
        channel_transfer_rate_mts: 100,
        ..presets::intel_750()
    };
    let fast_bus = SsdConfig {
        channel_transfer_rate_mts: 800,
        ..presets::intel_750()
    };
    let (ts, _) = saturated(slow_bus, WorkloadKind::BatchAnalytics, 2_000);
    let (tf, _) = saturated(fast_bus, WorkloadKind::BatchAnalytics, 2_000);
    assert!(tf > ts * 1.5, "fast bus {tf:.0} vs slow bus {ts:.0}");
}

#[test]
fn planes_multiply_sustained_write_bandwidth() {
    // Same die count; 8 planes per die let the transaction scheduler batch
    // multiplane programs, multiplying write bandwidth.
    let one_plane = SsdConfig {
        planes_per_die: 1,
        blocks_per_plane: 1024,
        pages_per_block: 256,
        ..presets::intel_750()
    };
    let eight_planes = SsdConfig {
        planes_per_die: 8,
        blocks_per_plane: 128,
        pages_per_block: 256,
        ..presets::intel_750()
    };
    let (t1, _) = saturated(one_plane, WorkloadKind::Fiu, 2_000);
    let (t8, _) = saturated(eight_planes, WorkloadKind::Fiu, 2_000);
    // Multiplane batching is bounded by the channel feed rate, so the gain
    // is well below 8x, but it must be clearly visible.
    assert!(
        t8 > t1 * 1.15,
        "8 planes {t8:.0} should beat 1 plane {t1:.0}"
    );
}

#[test]
fn channel_first_striping_parallelizes_sequential_readback() {
    // Write a region larger than the data cache, then read it back
    // sequentially. Plane-first striping packs consecutive pages onto one
    // die (serial readback); channel-first spreads them across channels.
    use autoblox_repro::iotrace::OpKind;
    let base = SsdConfig {
        planes_per_die: 4,
        blocks_per_plane: 256,
        pages_per_block: 256,
        data_cache_mb: 4,
        ..presets::intel_750()
    };
    let mk_trace = || {
        let mut events = Vec::new();
        // 3000 x 16 KiB sequential writes (~48 MiB >> 4 MiB cache) ...
        for i in 0..3000u64 {
            events.push(autoblox_repro::iotrace::TraceEvent::new(
                i * 20_000,
                i * 32,
                16_384,
                OpKind::Write,
            ));
        }
        // ... then sequential readback.
        for i in 0..3000u64 {
            events.push(autoblox_repro::iotrace::TraceEvent::new(
                70_000_000 + i * 20_000,
                i * 32,
                16_384,
                OpKind::Read,
            ));
        }
        Trace::from_events("seqrw", events)
    };
    let run_scheme = |scheme| {
        let cfg = SsdConfig {
            plane_allocation_scheme: scheme,
            ..base.clone()
        };
        let mut sim = Simulator::new(cfg);
        sim.warm_up(0.3);
        sim.run(&mk_trace()).read_latency.mean_ns
    };
    let channel_first = run_scheme(PlaneAllocationScheme::Cwdp);
    let plane_first = run_scheme(PlaneAllocationScheme::Pcwd);
    assert!(
        channel_first < plane_first,
        "channel-first readback {channel_first:.0} ns should beat plane-first {plane_first:.0} ns"
    );
}

#[test]
fn program_suspension_cuts_read_tail_under_mixed_load() {
    let off = presets::intel_750();
    let on = SsdConfig {
        program_suspension_enabled: true,
        ..off.clone()
    };
    let r_off = run(off, WorkloadKind::Database, 2_500);
    let r_on = run(on, WorkloadKind::Database, 2_500);
    assert!(r_on.read_latency.p99_ns < r_off.read_latency.p99_ns);
}

#[test]
fn overprovisioning_reduces_gc_migrations_under_churn() {
    // Shrink the device so sustained overwrites exercise GC.
    let tight = SsdConfig {
        channel_count: 2,
        chips_per_channel: 2,
        dies_per_chip: 2,
        blocks_per_plane: 64,
        pages_per_block: 64,
        overprovisioning_ratio: 0.05,
        gc_threshold: 0.2,
        ..presets::intel_750()
    };
    let roomy = SsdConfig {
        overprovisioning_ratio: 0.35,
        ..tight.clone()
    };
    let (_, rt) = saturated(tight, WorkloadKind::Fiu, 4_000);
    let (_, rr) = saturated(roomy, WorkloadKind::Fiu, 4_000);
    // More spare area means host-visible capacity is smaller, so the same
    // LBA churn concentrates, but per-GC migration cost drops: write
    // amplification must not grow.
    assert!(
        rr.write_amplification <= rt.write_amplification + 0.2,
        "roomy WA {} vs tight WA {}",
        rr.write_amplification,
        rt.write_amplification
    );
    assert!(rt.flash.programs > 0 && rr.flash.programs > 0);
}

#[test]
fn sata_link_caps_throughput() {
    let sata = presets::samsung_850_pro();
    let (t, _) = saturated(sata, WorkloadKind::BatchAnalytics, 2_000);
    // SATA III tops out at 600 MB/s; the model must respect that.
    assert!(t <= 620e6, "SATA throughput {t:.0} exceeds the link");
}

#[test]
fn energy_scales_with_work() {
    let short = run(presets::intel_750(), WorkloadKind::Database, 500);
    let long = run(presets::intel_750(), WorkloadKind::Database, 4_000);
    assert!(long.energy.total_mj() > short.energy.total_mj());
    assert!(long.average_power_w > 0.0);
}

#[test]
fn reports_are_deterministic_across_runs() {
    let a = run(presets::intel_750(), WorkloadKind::LiveMaps, 1_500);
    let b = run(presets::intel_750(), WorkloadKind::LiveMaps, 1_500);
    assert_eq!(a, b);
}
