//! Property-based integration tests (proptest) on cross-crate invariants:
//! arbitrary valid configurations and traces must never break the
//! simulator, the parameter space, or the metrics.

use autoblox_repro::autoblox::metrics::{performance, Measurement};
use autoblox_repro::autoblox::params::ParamSpace;
use autoblox_repro::iotrace::{OpKind, Trace, TraceEvent};
use autoblox_repro::ssdsim::config::{PlaneAllocationScheme, SsdConfig};
use autoblox_repro::ssdsim::Simulator;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SsdConfig> {
    (
        1u32..=8,                                        // channels
        1u32..=4,                                        // chips
        1u32..=4,                                        // dies
        prop::sample::select(vec![1u32, 2, 4, 8]),       // planes
        prop::sample::select(vec![32u32, 64, 128]),      // blocks
        prop::sample::select(vec![32u32, 64, 128]),      // pages
        prop::sample::select(vec![2048u32, 4096, 8192]), // page size
        0usize..16,                                      // allocation scheme index
        prop::bool::ANY,                                 // suspension
        prop::bool::ANY,                                 // write-back
    )
        .prop_map(
            |(ch, chips, dies, planes, blocks, pages, page_size, scheme, susp, wb)| SsdConfig {
                channel_count: ch,
                chips_per_channel: chips,
                dies_per_chip: dies,
                planes_per_die: planes,
                blocks_per_plane: blocks,
                pages_per_block: pages,
                page_size_bytes: page_size,
                plane_allocation_scheme: PlaneAllocationScheme::ALL[scheme],
                program_suspension_enabled: susp,
                cache_mode: if wb {
                    autoblox_repro::ssdsim::config::CacheMode::WriteBack
                } else {
                    autoblox_repro::ssdsim::config::CacheMode::WriteThrough
                },
                data_cache_mb: 64,
                cmt_capacity_mb: 64,
                ..SsdConfig::default()
            },
        )
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (
            0u64..10_000_000,
            0u64..1_000_000,
            prop::sample::select(vec![512u32, 4096, 65536, 1 << 20]),
            prop::bool::ANY,
        ),
        1..120,
    )
    .prop_map(|events| {
        Trace::from_events(
            "prop",
            events
                .into_iter()
                .map(|(t, lba, size, read)| {
                    TraceEvent::new(
                        t,
                        lba,
                        size,
                        if read { OpKind::Read } else { OpKind::Write },
                    )
                })
                .collect(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulator_never_panics_and_reports_are_sane(cfg in arb_config(), trace in arb_trace()) {
        prop_assume!(cfg.validate().is_ok());
        let mut sim = Simulator::new(cfg);
        sim.warm_up(0.5);
        let report = sim.run(&trace);
        prop_assert_eq!(report.latency.count as usize, trace.len());
        prop_assert!(report.latency.p50_ns <= report.latency.p99_ns);
        prop_assert!(report.latency.p99_ns <= report.latency.max_ns);
        prop_assert!(report.latency.mean_ns <= report.latency.max_ns as f64 + 1.0);
        prop_assert!(report.throughput_bps >= 0.0);
        prop_assert!(report.energy.total_mj() >= 0.0);
        prop_assert!(report.host_bytes == trace.total_bytes());
    }

    #[test]
    fn vectorize_apply_is_stable_for_any_config(cfg in arb_config()) {
        prop_assume!(cfg.validate().is_ok());
        let space = ParamSpace::new();
        let v1 = space.vectorize(&cfg);
        let cfg2 = space.apply(&cfg, &v1);
        let v2 = space.vectorize(&cfg2);
        // Applying a vector and re-reading it is a fixed point.
        prop_assert_eq!(v1, v2);
        prop_assert!(cfg2.validate().is_ok());
    }

    #[test]
    fn manhattan_is_a_metric(cfg in arb_config(), moves in prop::collection::vec((0usize..48, 0usize..4), 0..6)) {
        prop_assume!(cfg.validate().is_ok());
        let space = ParamSpace::new();
        let a = space.vectorize(&cfg);
        let mut b = a.clone();
        for (pi, step) in moves {
            let card = space.params()[pi].cardinality();
            b[pi] = (b[pi] + step) % card;
        }
        // Identity, symmetry, triangle inequality versus a third point.
        prop_assert_eq!(space.manhattan(&a, &a), 0);
        prop_assert_eq!(space.manhattan(&a, &b), space.manhattan(&b, &a));
        let c = a.clone();
        prop_assert!(space.manhattan(&a, &b) <= space.manhattan(&a, &c) + space.manhattan(&c, &b));
    }

    #[test]
    fn performance_is_antisymmetric_for_any_measurements(
        la in 1.0f64..1e9, ta in 1.0f64..1e12,
        lb in 1.0f64..1e9, tb in 1.0f64..1e12,
        alpha in 0.0f64..=1.0,
    ) {
        let a = Measurement { latency_ns: la, throughput_bps: ta, power_w: 1.0, energy_mj: 1.0 };
        let b = Measurement { latency_ns: lb, throughput_bps: tb, power_w: 1.0, energy_mj: 1.0 };
        let ab = performance(&a, &b, alpha);
        let ba = performance(&b, &a, alpha);
        prop_assert!((ab + ba).abs() < 1e-9);
    }

    #[test]
    fn trace_csv_roundtrip_for_any_trace(trace in arb_trace()) {
        let mut buf = Vec::new();
        autoblox_repro::iotrace::parse::write_csv(&trace, &mut buf).unwrap();
        let parsed = autoblox_repro::iotrace::parse::parse_csv("prop", buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.events(), trace.events());
    }
}
