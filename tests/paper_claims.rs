//! Integration tests asserting the qualitative claims of the paper at
//! reduced scale: pruning discovers the inert parameters, the tuning order
//! does not hurt the result, validation pruning saves simulator runs, and
//! the coefficient sweeps behave as §4.6 describes.

use autoblox_repro::autoblox::constraints::Constraints;
use autoblox_repro::autoblox::metrics::{grade, performance, Measurement};
use autoblox_repro::autoblox::params::ParamSpace;
use autoblox_repro::autoblox::pruning::{coarse_prune, fine_prune, FineOptions};
use autoblox_repro::autoblox::tuner::{Tuner, TunerOptions};
use autoblox_repro::autoblox::validator::{Validator, ValidatorOptions};
use autoblox_repro::iotrace::gen::WorkloadKind;
use autoblox_repro::ssdsim::config::presets;

fn quick_validator() -> Validator {
    Validator::new(ValidatorOptions {
        trace_events: 400,
        ..Default::default()
    })
}

#[test]
fn coarse_pruning_finds_the_inert_parameters() {
    let v = quick_validator();
    let space = ParamSpace::new();
    let report = coarse_prune(&space, &presets::intel_750(), WorkloadKind::Database, &v);
    let insensitive = report.insensitive();
    // The deliberately inert parameters must all be discovered.
    for inert in [
        "page_metadata_capacity",
        "ecc_engine_count",
        "read_retry_limit",
        "background_scan_interval",
        "init_delay",
        "firmware_sram_size",
        "thermal_throttle_threshold",
        "pfail_flush_budget",
        "dram_refresh_interval",
        "nand_vcc",
    ] {
        assert!(
            insensitive.contains(&inert),
            "{inert} should be insensitive, got {insensitive:?}"
        );
    }
    // And the load-bearing layout parameters must survive.
    let sensitive = report.sensitive();
    assert!(sensitive.contains(&"channel_count"), "{sensitive:?}");
}

#[test]
fn insensitive_sets_differ_by_workload() {
    // §3.3: "these insensitive device parameters vary for different
    // workload types". Compare a read-only and a write-heavy workload.
    let v = quick_validator();
    let space = ParamSpace::new();
    let ws = coarse_prune(&space, &presets::intel_750(), WorkloadKind::WebSearch, &v);
    let fiu = coarse_prune(&space, &presets::intel_750(), WorkloadKind::Fiu, &v);
    assert_ne!(
        ws.insensitive(),
        fiu.insensitive(),
        "read-only and write-heavy workloads should disagree about sensitivity"
    );
}

#[test]
fn fine_pruning_produces_a_usable_tuning_order() {
    let v = quick_validator();
    let space = ParamSpace::new();
    let names = [
        "channel_count",
        "data_cache_size",
        "io_queue_depth",
        "init_delay",
    ];
    let report = fine_prune(
        &space,
        &presets::intel_750(),
        WorkloadKind::KvStore,
        &names,
        &v,
        FineOptions {
            samples: 20,
            ..Default::default()
        },
    );
    let order = report.tuning_order();
    assert!(!order.is_empty());
    // The order is sorted by |coefficient| descending.
    let coefs: Vec<f64> = order
        .iter()
        .map(|n| report.coefficient(n).unwrap().abs())
        .collect();
    for w in coefs.windows(2) {
        assert!(w[0] >= w[1]);
    }
}

#[test]
fn tuning_order_does_not_hurt_final_grade() {
    let constraints = Constraints::paper_default();
    let reference = presets::intel_750();
    let order = [
        "channel_count",
        "plane_allocation_scheme",
        "program_suspension",
    ];

    let run = |use_order: bool| {
        let v = quick_validator();
        let opts = TunerOptions {
            max_iterations: 6,
            use_tuning_order: use_order,
            non_target: vec![],
            ..TunerOptions::default()
        };
        let tuner = Tuner::new(constraints, &v, opts);
        tuner.tune(
            WorkloadKind::Database,
            &reference,
            &[],
            if use_order { Some(&order) } else { None },
        )
    };
    let with = run(true);
    let without = run(false);
    // Figure 9's claim, weakened to "not substantially worse" at this
    // reduced scale: the ordered search must stay within 25% of the
    // unordered one (it usually wins).
    assert!(
        with.best.grade >= without.best.grade * 0.75 - 0.05,
        "with order {} vs without {}",
        with.best.grade,
        without.best.grade
    );
}

#[test]
fn validation_pruning_saves_simulator_runs() {
    let constraints = Constraints::paper_default();
    let reference = presets::intel_750();
    let run = |pruning: bool| {
        let v = quick_validator();
        let opts = TunerOptions {
            max_iterations: 6,
            validation_pruning: pruning,
            non_target: vec![
                WorkloadKind::WebSearch,
                WorkloadKind::CloudStorage,
                WorkloadKind::Fiu,
            ],
            seed: 42,
            ..TunerOptions::default()
        };
        let tuner = Tuner::new(constraints, &v, opts);
        let out = tuner.tune(WorkloadKind::Database, &reference, &[], None);
        (out.validations, out.best.grade)
    };
    let (runs_with, grade_with) = run(true);
    let (runs_without, _) = run(false);
    assert!(
        runs_with <= runs_without,
        "pruning must not increase simulator runs ({runs_with} vs {runs_without})"
    );
    assert!(grade_with >= 0.0);
}

#[test]
fn formula1_alpha_balances_latency_and_throughput() {
    // §4.6: small alpha rewards latency-only improvements; large alpha
    // rewards throughput-only improvements.
    let reference = Measurement {
        latency_ns: 100.0,
        throughput_bps: 1e9,
        power_w: 5.0,
        energy_mj: 100.0,
    };
    let fast_but_narrow = Measurement {
        latency_ns: 50.0,
        throughput_bps: 0.5e9,
        ..reference
    };
    assert!(performance(&fast_but_narrow, &reference, 0.01) > 0.0);
    assert!(performance(&fast_but_narrow, &reference, 0.99) < 0.0);
    // alpha = 0.5 on a symmetric trade nets zero.
    assert!(performance(&fast_but_narrow, &reference, 0.5).abs() < 1e-12);
}

#[test]
fn formula2_beta_penalizes_non_target_regressions() {
    // A config that helps the target but hurts non-targets loses grade as
    // beta grows.
    let target_perf = 0.5;
    let non_target = [-0.4, -0.3];
    let g_small = grade(target_perf, &non_target, 0.01);
    let g_large = grade(target_perf, &non_target, 0.5);
    assert!(g_small > g_large);
}

#[test]
fn what_if_unlocks_flash_timing() {
    use autoblox_repro::autoblox::whatif::{what_if, WhatIfGoal, WhatIfOptions};
    let v = quick_validator();
    let opts = WhatIfOptions {
        tuner: TunerOptions {
            max_iterations: 8,
            sgd_iterations: 3,
            ..TunerOptions::default()
        },
    };
    let out = what_if(
        WorkloadKind::WebSearch,
        WhatIfGoal::LatencyReduction(1.2),
        Constraints::paper_default(),
        &presets::intel_750(),
        &v,
        opts,
    );
    // The what-if search may tune chip timings (normal tuning may not).
    assert!(out.tuning.best.config.read_latency_ns <= presets::intel_750().read_latency_ns);
    assert!(out.achieved >= 1.0);
}

#[test]
fn read_intensive_workloads_get_different_configurations() {
    // §4.2: "BatchAnalytics (97.8% Read) and WebSearch (99.9% Read) are
    // both read intensive workloads, AutoBlox shows that they can have
    // different optimized configurations" — coarse read/write-intensity
    // classification is not enough.
    let constraints = Constraints::paper_default();
    let reference = presets::intel_750();
    let tune = |kind| {
        let v = Validator::new(ValidatorOptions {
            trace_events: 800,
            ..Default::default()
        });
        let opts = TunerOptions {
            max_iterations: 8,
            non_target: vec![],
            ..TunerOptions::default()
        };
        Tuner::new(constraints, &v, opts).tune(kind, &reference, &[], None)
    };
    let batch = tune(WorkloadKind::BatchAnalytics);
    let web = tune(WorkloadKind::WebSearch);
    let space = ParamSpace::new();
    let vb = space.vectorize(&batch.best.config);
    let vw = space.vectorize(&web.best.config);
    assert_ne!(
        vb, vw,
        "two read-intensive workloads should still learn distinct configurations"
    );
}

#[test]
fn grade_initialization_uses_stored_experience() {
    // §3.4 step 1: recalled AutoDB configurations seed the model; a seeded
    // run must never end below the grade of its seed configuration.
    let constraints = Constraints::paper_default();
    let reference = presets::intel_750();
    let v = Validator::new(ValidatorOptions {
        trace_events: 500,
        ..Default::default()
    });
    let opts = TunerOptions {
        max_iterations: 5,
        non_target: vec![],
        ..TunerOptions::default()
    };
    let first = Tuner::new(constraints, &v, opts.clone()).tune(
        WorkloadKind::LiveMaps,
        &reference,
        &[],
        None,
    );
    let seeded = Tuner::new(constraints, &v, opts).tune(
        WorkloadKind::LiveMaps,
        &reference,
        std::slice::from_ref(&first.best.config),
        None,
    );
    assert!(
        seeded.best.grade >= first.best.grade - 1e-9,
        "seeded {} vs first {}",
        seeded.best.grade,
        first.best.grade
    );
}
