//! Minimal in-repo stand-in for the `serde_derive` proc-macro crate.
//!
//! Real serde_derive depends on syn/quote, which the offline build cannot
//! fetch, so this implementation parses the item with a small hand-written
//! `TokenTree` walker and emits code by string construction. It supports
//! exactly the shapes this workspace derives:
//!
//! - named-field structs;
//! - enums with unit, single-field (newtype), and struct variants,
//!   externally tagged like real serde (`"Variant"` /
//!   `{"Variant": inner}` / `{"Variant": {fields...}}`);
//! - the field attributes `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Anything else (tuple structs, generics, other serde attributes) panics
//! at expansion time with a clear message rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field and the serde attributes that affect it.
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-based shim flavor).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_serialize(name, fields),
        Item::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive emitted invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-based shim flavor).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Item::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive emitted invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_ident(&self) -> Option<String> {
        match self.peek() {
            Some(TokenTree::Ident(i)) => Some(i.to_string()),
            _ => None,
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected {what}, found {other:?}"),
        }
    }

    /// Consumes leading `#[...]` attributes, returning the token streams of
    /// any `#[serde(...)]` groups so field parsing can inspect them.
    fn eat_attrs(&mut self) -> Vec<TokenStream> {
        let mut serde_attrs = Vec::new();
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let mut inner = Cursor::new(g.stream());
                    if inner.peek_ident().as_deref() == Some("serde") {
                        inner.next();
                        if let Some(TokenTree::Group(args)) = inner.next() {
                            serde_attrs.push(args.stream());
                        }
                    }
                }
                other => panic!("serde_derive: malformed attribute: {other:?}"),
            }
        }
        serde_attrs
    }

    fn eat_visibility(&mut self) {
        if self.peek_ident().as_deref() == Some("pub") {
            self.next();
            // `pub(crate)` / `pub(in ...)` carry a parenthesized group.
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Skips a field's type: everything up to the next top-level comma.
    /// Only `<`/`>` need depth tracking — parens, brackets, and braces
    /// arrive as single atomic `Group` trees.
    fn skip_type(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let body = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim: `{name}` must have a braced body \
             (tuple/unit structs unsupported), found {other:?}"
        ),
    };
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive: expected struct or enum, found `{other}`"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let serde_attrs = c.eat_attrs();
        if c.at_end() {
            break;
        }
        c.eat_visibility();
        let name = c.expect_ident("field name");
        if !c.eat_punct(':') {
            panic!("serde_derive shim: field `{name}` is not a named field");
        }
        c.skip_type();
        c.eat_punct(',');

        let mut field = Field {
            name,
            default: false,
            skip_if: None,
        };
        for attr in serde_attrs {
            apply_serde_attr(&mut field, attr);
        }
        fields.push(field);
    }
    fields
}

/// Interprets one `#[serde(...)]` argument list for a field.
fn apply_serde_attr(field: &mut Field, args: TokenStream) {
    let mut c = Cursor::new(args);
    while !c.at_end() {
        let key = c.expect_ident("serde attribute name");
        match key.as_str() {
            "default" => field.default = true,
            "skip_serializing_if" => {
                if !c.eat_punct('=') {
                    panic!("serde_derive: skip_serializing_if needs `= \"path\"`");
                }
                match c.next() {
                    Some(TokenTree::Literal(lit)) => {
                        let s = lit.to_string();
                        field.skip_if = Some(s.trim_matches('"').to_string());
                    }
                    other => panic!("serde_derive: bad skip_serializing_if: {other:?}"),
                }
            }
            other => panic!(
                "serde_derive shim: unsupported serde attribute `{other}` \
                 on field `{}`",
                field.name
            ),
        }
        c.eat_punct(',');
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.eat_attrs();
        if c.at_end() {
            break;
        }
        let name = c.expect_ident("variant name");
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = g.stream();
                c.next();
                let mut inner = Cursor::new(fields);
                inner.skip_type();
                if !inner.at_end() {
                    panic!(
                        "serde_derive shim: variant `{name}` has multiple \
                         tuple fields; only newtype variants are supported"
                    );
                }
                VariantShape::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == '=' {
                panic!("serde_derive shim: explicit discriminants unsupported");
            }
        }
        c.eat_punct(',');
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[Field]) -> String {
    let mut body = String::new();
    body.push_str("let mut __obj = ::std::collections::BTreeMap::new();\n");
    for f in fields {
        let insert = format!(
            "__obj.insert(\"{n}\".to_string(), \
             ::serde::Serialize::serialize_value(&self.{n}));\n",
            n = f.name
        );
        match &f.skip_if {
            Some(path) => {
                body.push_str(&format!(
                    "if !{path}(&self.{n}) {{ {insert} }}\n",
                    n = f.name
                ));
            }
            None => body.push_str(&insert),
        }
    }
    body.push_str("::serde::Value::Object(__obj)");
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Expression rebuilding one field from object map `__obj` of type `ty_label`.
fn field_from_obj(f: &Field, ty_label: &str) -> String {
    let fallback = if f.default {
        "::std::default::Default::default()".to_string()
    } else {
        // `Option` fields deserialize from Null to None; everything else
        // surfaces a missing-field error.
        format!(
            "::serde::Deserialize::deserialize_value(&::serde::Value::Null)\
             .map_err(|_| ::serde::DeError::missing_field(\"{n}\", \"{ty_label}\"))?",
            n = f.name
        )
    };
    format!(
        "{n}: match __obj.get(\"{n}\") {{\n\
             Some(__x) => ::serde::Deserialize::deserialize_value(__x)?,\n\
             None => {fallback},\n\
         }},\n",
        n = f.name
    )
}

fn gen_struct_deserialize(name: &str, fields: &[Field]) -> String {
    let mut ctor = String::new();
    for f in fields {
        ctor.push_str(&field_from_obj(f, name));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let __obj = match __v {{\n\
                     ::serde::Value::Object(__m) => __m,\n\
                     __other => return ::std::result::Result::Err(\
                         ::serde::DeError::custom(format!(\
                             \"expected object for `{name}`, got {{__other:?}}\"))),\n\
                 }};\n\
                 ::std::result::Result::Ok({name} {{\n{ctor}\n}})\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        match &v.shape {
            VariantShape::Unit => arms.push_str(&format!(
                "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                v = v.name
            )),
            VariantShape::Newtype => arms.push_str(&format!(
                "{name}::{v}(__f0) => {{\n\
                     let mut __obj = ::std::collections::BTreeMap::new();\n\
                     __obj.insert(\"{v}\".to_string(), \
                         ::serde::Serialize::serialize_value(__f0));\n\
                     ::serde::Value::Object(__obj)\n\
                 }}\n",
                v = v.name
            )),
            VariantShape::Struct(fields) => {
                let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let mut inner = String::new();
                for f in fields {
                    inner.push_str(&format!(
                        "__inner.insert(\"{n}\".to_string(), \
                         ::serde::Serialize::serialize_value({n}));\n",
                        n = f.name
                    ));
                }
                arms.push_str(&format!(
                    "{name}::{v} {{ {binds} }} => {{\n\
                         let mut __inner = ::std::collections::BTreeMap::new();\n\
                         {inner}\
                         let mut __obj = ::std::collections::BTreeMap::new();\n\
                         __obj.insert(\"{v}\".to_string(), \
                             ::serde::Value::Object(__inner));\n\
                         ::serde::Value::Object(__obj)\n\
                     }}\n",
                    v = v.name,
                    binds = binders.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        match &v.shape {
            VariantShape::Unit => unit_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                v = v.name
            )),
            VariantShape::Newtype => data_arms.push_str(&format!(
                "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                     ::serde::Deserialize::deserialize_value(__inner)?)),\n",
                v = v.name
            )),
            VariantShape::Struct(fields) => {
                let label = format!("{name}::{}", v.name);
                let mut ctor = String::new();
                for f in fields {
                    ctor.push_str(&field_from_obj(f, &label));
                }
                data_arms.push_str(&format!(
                    "\"{v}\" => {{\n\
                         let __obj = match __inner {{\n\
                             ::serde::Value::Object(__m) => __m,\n\
                             __other => return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(format!(\
                                     \"expected object for `{label}`, \
                                      got {{__other:?}}\"))),\n\
                         }};\n\
                         ::std::result::Result::Ok({name}::{v} {{\n{ctor}\n}})\n\
                     }}\n",
                    v = v.name
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::custom(format!(\
                                 \"unknown variant `{{__other}}` for `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                         let (__k, __inner) = __m.iter().next().unwrap();\n\
                         match __k.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(\
                                 ::serde::DeError::custom(format!(\
                                     \"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::custom(format!(\
                             \"expected `{name}` variant, got {{__other:?}}\"))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
