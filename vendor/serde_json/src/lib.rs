//! Minimal in-repo stand-in for the `serde_json` crate.
//!
//! Layers JSON text parsing and printing over the vendored `serde` crate's
//! owned [`Value`] model. Covers the API surface this workspace uses:
//! `to_string(_pretty)`, `to_writer`, `from_str`, `from_reader`,
//! `to_value`, `from_value`, the [`json!`] macro, and an [`Error`] type
//! that implements `std::error::Error`.

#![warn(missing_docs)]

use std::io::{Read, Write};

pub use serde::Value;

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Error from JSON parsing, printing, or shape conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias for this crate's fallible functions.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T> {
    Ok(T::deserialize_value(&value)?)
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to two-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Parses a `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::deserialize_value(&v)?)
}

/// Parses a `T` from a JSON reader.
pub fn from_reader<R: Read, T: DeserializeOwned>(mut reader: R) -> Result<T> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::new(format!("read failed: {e}")))?;
    from_str(&text)
}

/// Builds a [`Value`] from a JSON-shaped literal.
///
/// Supports `null`, flat arrays, objects with literal keys, and arbitrary
/// serializable expressions as leaves. Nest with explicit inner `json!`
/// calls (`json!({"a": json!([1, 2])})`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut __obj = ::std::collections::BTreeMap::new();
        $( __obj.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` prints the shortest text that round-trips, always with a
        // `.0`/`e` marker so re-parsing yields a Float again.
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no NaN/inf; real serde_json emits null here too.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // printer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // ASCII fast path: the overwhelmingly common case, and
                // decoding it directly keeps string parsing linear (a
                // whole-tail `from_utf8` here made large documents
                // quadratic).
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 code point. The input
                    // arrived as `&str`, so a well-formed sequence of the
                    // length announced by the leading byte is guaranteed.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let ch = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&json!(null)).unwrap(), "null");
        assert_eq!(to_string(&json!(true)).unwrap(), "true");
        assert_eq!(to_string(&json!(42)).unwrap(), "42");
        assert_eq!(to_string(&json!(1.5)).unwrap(), "1.5");
        assert_eq!(
            to_string(&json!("hi\n\"there\"")).unwrap(),
            "\"hi\\n\\\"there\\\"\""
        );
    }

    #[test]
    fn object_roundtrip() {
        let v = json!({"grade": 1.25, "name": "web", "n": 3});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["grade"], 1.25);
        assert_eq!(back["n"], 3);
        assert_eq!(back["name"], "web");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = json!({"a": json!([1, 2, 3]), "b": json!({"c": true})});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_preserves_floatness() {
        let v = json!(2.0);
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{\"a\": ").is_err());
        assert!(from_str::<Value>("nulx").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let back: Value = from_str("\"\\u0041\\u00e9\"").unwrap();
        assert_eq!(back, "Aé");
    }
}
