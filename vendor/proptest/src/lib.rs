//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! The offline build cannot fetch real proptest, so this shim re-implements
//! the subset the workspace's property tests use: the `proptest!` macro,
//! `Strategy` with `prop_map`/`prop_flat_map`, range/tuple/`Just`/`select`/
//! `bool::ANY`/`collection::vec` strategies, `prop_oneof!`, `any::<T>()`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! generated case via the panic message) and no persisted failure seeds —
//! every run is deterministic from the test name, which is what this
//! workspace's CI wants anyway.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use super::*;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// `generate` is object-safe so strategies can be boxed for
    /// [`Union`] (`prop_oneof!`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; panics on an empty arm list.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.arms.len());
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

pub use strategy::{Just, Strategy};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical full-range strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy yielding any value of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_int {
    ($($t:ty => $gen:expr),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                let f: fn(&mut StdRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_int!(
    u8 => |rng| rng.gen::<u8>(),
    u16 => |rng| rng.gen::<u16>(),
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    usize => |rng| rng.gen::<usize>(),
    i32 => |rng| rng.gen::<i32>(),
    i64 => |rng| rng.gen::<i64>(),
    bool => |rng| rng.gen::<bool>(),
    f64 => |rng| rng.gen::<f64>() * 2e6 - 1e6
);

/// The canonical strategy for `T` (`any::<i64>()` etc.).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Namespaced strategy constructors (`prop::sample::select`, ...).
pub mod prop {
    /// Strategies drawing from explicit value lists.
    pub mod sample {
        use super::super::*;

        /// Strategy choosing uniformly from a fixed list.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone> {
            items: Vec<T>,
        }

        /// Chooses uniformly from `items`; panics if empty.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select() needs at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut StdRng) -> T {
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::*;

        /// Strategy yielding either boolean.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean strategy.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// Length specification for [`vec()`]: an exact size or a range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                SizeRange {
                    min: r.start,
                    max: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                SizeRange {
                    min: *r.start(),
                    max: *r.end() + 1,
                }
            }
        }

        /// Strategy yielding vectors of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Vectors whose length is drawn from `size` and whose elements come
        /// from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            let size = size.into();
            assert!(size.min < size.max, "empty collection size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.size.min..self.size.max);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-skipped) cases each test must run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Marker returned by `prop_assume!` when a generated case is rejected.
#[derive(Debug, Clone, Copy)]
pub struct TestCaseSkip;

/// Drives one property test: repeatedly generates cases until `cfg.cases`
/// succeed, skipping `prop_assume!` rejections (bounded so a strategy that
/// always rejects fails loudly instead of spinning).
pub fn run_cases<F>(cfg: ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseSkip>,
{
    // FNV-1a over the test name: deterministic per test, stable across runs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= u64::from(b);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = StdRng::seed_from_u64(seed);

    let mut successes = 0u32;
    let max_attempts = cfg.cases.saturating_mul(20).max(64);
    for _ in 0..max_attempts {
        if successes >= cfg.cases {
            return;
        }
        if case(&mut rng).is_ok() {
            successes += 1;
        }
    }
    assert!(
        successes >= cfg.cases,
        "proptest `{test_name}`: only {successes}/{} cases passed the \
         prop_assume! filters after {max_attempts} attempts",
        cfg.cases
    );
}

/// Defines property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; the config expression is bound at
/// repetition depth zero so it can be repeated per test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        @cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases($cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)*
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseSkip);
        }
    };
}

/// Asserts within a property test (fails the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strat)),+
        ])
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, ProptestConfig,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 1u32..=4, y in 0usize..16, f in -2.0f64..2.0) {
            prop_assert!((1..=4).contains(&x));
            prop_assert!(y < 16);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose(v in (0u8..4, prop::bool::ANY).prop_map(|(a, b)| (a as usize, b))) {
            prop_assert!(v.0 < 4);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_hits_every_arm(choices in prop::collection::vec(
            prop_oneof![Just(0u8), Just(1u8), 2u8..4],
            64..65,
        )) {
            for &c in &choices {
                prop_assert!(c < 4);
            }
        }

        #[test]
        fn select_and_flat_map(v in prop::sample::select(vec![2usize, 3, 5])
            .prop_flat_map(|n| prop::collection::vec(0u8..10, n).prop_map(move |xs| (n, xs))))
        {
            prop_assert_eq!(v.0, v.1.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::rngs::StdRng;
        let collect = || {
            let mut out = Vec::new();
            crate::run_cases(
                crate::ProptestConfig::with_cases(8),
                "determinism_probe",
                |rng: &mut StdRng| {
                    out.push(crate::Strategy::generate(&(0u64..1000), rng));
                    Ok(())
                },
            );
            out
        };
        assert_eq!(collect(), collect());
    }
}
