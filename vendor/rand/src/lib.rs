//! Minimal in-repo stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This shim provides the surface the workspace actually uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` methods
//! `gen`, `gen_range`, and `gen_bool` — backed by xoshiro256++ seeded via
//! SplitMix64. The stream differs from upstream `StdRng` (ChaCha12), which
//! is fine: every consumer seeds explicitly and only relies on in-repo
//! determinism, not on upstream bit-compatibility.

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl Standard for u8 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl Standard for usize {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift keeps the draw well distributed for spans
                // far below 2^64 (every span in this workspace).
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let hi = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::from_rng(rng);
        start + u * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::from_rng(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws one value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, e.g. for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`].
        ///
        /// The reconstructed generator continues the exact stream the
        /// original would have produced.
        ///
        /// [`state`]: StdRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
            let w = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mut counts = [0u32; 8];
        for _ in 0..n {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 8.0;
            assert!((f64::from(c) - expected).abs() < expected * 0.1);
        }
    }
}
