//! Minimal in-repo stand-in for the `rand_distr` crate (0.4 API subset).
//!
//! Provides the three distributions the workload generator uses — `Exp`,
//! `LogNormal`, and `Zipf` — sampled from any [`rand::Rng`]. Inverse-CDF and
//! Box-Muller transforms keep the implementations dependency-free; Zipf uses
//! a precomputed CDF table with binary search, which is exact and fast for
//! the support sizes this workspace generates (≤ a few hundred thousand).

#![warn(missing_docs)]

use rand::Rng;

/// Types that can be sampled from an RNG.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given rate.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ParamError("Exp rate must be finite and positive"))
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u avoids ln(0) since u is in [0, 1).
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the mean and standard
    /// deviation of the underlying normal.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if sigma >= 0.0 && sigma.is_finite() && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(ParamError(
                "LogNormal sigma must be finite and non-negative",
            ))
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; u1 is flipped to (0, 1] so ln(u1) is finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen();
        let normal = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * normal).exp()
    }
}

/// Zipf distribution over `{1, ..., n}` with exponent `s`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution with `n` elements and exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf support must be non-empty"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError("Zipf exponent must be finite and non-negative"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(10);
        let d = Exp::new(0.5).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 50_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!(
            (median - 1.0f64.exp()).abs() < 0.15,
            "median {median} vs {}",
            1.0f64.exp()
        );
    }

    #[test]
    fn zipf_favors_small_ranks() {
        let mut rng = StdRng::seed_from_u64(12);
        let d = Zipf::new(100, 1.0).unwrap();
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            let v = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
            counts[v as usize - 1] += 1;
        }
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
    }
}
