//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! The offline build cannot fetch real criterion, so this shim provides the
//! harness surface the `crates/bench` benchmarks use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros — backed by simple wall-clock timing. There is no statistical
//! analysis: each benchmark runs a calibrated batch and prints mean
//! ns/iteration (plus derived throughput when configured), which is enough
//! to compare configurations and track trends.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifier that is only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    iters_hint: u64,
    /// Mean duration of one iteration, filled by `iter`.
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then a timed batch.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters_hint {
            black_box(routine());
        }
        self.elapsed_per_iter = start.elapsed() / u32::try_from(self.iters_hint).unwrap_or(1);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate the batch size so quick routines are averaged over many
    // runs while slow ones (whole tuning iterations) only run a few times.
    let mut probe = Bencher {
        iters_hint: 1,
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed_per_iter.max(Duration::from_nanos(1));
    let target_total = Duration::from_millis(200);
    let calibrated = (target_total.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
    let iters = calibrated.min(sample_size.max(1) * 10);

    let mut bencher = Bencher {
        iters_hint: iters,
        elapsed_per_iter: per_iter,
    };
    f(&mut bencher);
    let ns = bencher.elapsed_per_iter.as_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            let rate = n as f64 / bencher.elapsed_per_iter.as_secs_f64();
            println!("bench: {name:<50} {ns:>12} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            let rate = n as f64 / bencher.elapsed_per_iter.as_secs_f64();
            println!("bench: {name:<50} {ns:>12} ns/iter ({rate:.0} B/s)");
        }
        _ => println!("bench: {name:<50} {ns:>12} ns/iter"),
    }
}

/// Top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 100, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps how many samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Declares units-per-iteration for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(
            &format!("{}/{name}", self.name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; parity with real criterion).
    pub fn finish(&mut self) {}
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.finish();
    }
}
