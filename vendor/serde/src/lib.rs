//! Minimal in-repo stand-in for the `serde` crate.
//!
//! The build environment is offline, so real serde (and its proc-macro
//! stack) cannot be fetched. This shim keeps the workspace's derive-based
//! serialization working with a much simpler model: both traits go through
//! an owned JSON-like [`Value`] tree instead of serde's visitor machinery.
//! `serde_json` (also vendored) re-exports [`Value`] and layers text
//! parsing/printing on top.
//!
//! Supported surface: `#[derive(Serialize, Deserialize)]` on named-field
//! structs and on enums with unit / newtype / struct variants (externally
//! tagged, like real serde), plus the `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "...")]` field attributes.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// An owned, JSON-shaped value tree.
///
/// This plays the role of `serde_json::Value`; it lives here so the derive
/// output only needs the `serde` crate in scope.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer number (anything that fits an `i64`).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with string keys, kept sorted for stable output.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Numeric view of the value, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer (or integral float).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => Some(*f as i64),
            _ => None,
        }
    }

    /// Unsigned view of the value, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// Member access that returns `Null` (rather than panicking) for
    /// non-objects and absent keys, matching `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(i) if *i == *other as i64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, u8, u16, u32, usize);

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Value::Int(i) if u64::try_from(*i).ok() == Some(*other))
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates the canonical missing-field error.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` for `{ty}`"),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn serialize_value(&self) -> Value;
}

/// Conversion out of a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization submodule mirroring serde's layout.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    ///
    /// The value-based model never borrows, so this is a blanket alias for
    /// [`Deserialize`](crate::Deserialize).
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(*self as f64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(format!(
                        "expected integer for {}, got {v:?}",
                        stringify!($t)
                    )))?;
                <$t>::try_from(i).map_err(|_| {
                    DeError::custom(format!("{i} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::deserialize_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            other => Err(DeError::custom(format!("expected pair, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42u32.serialize_value(), Value::Int(42));
        assert_eq!(u32::deserialize_value(&Value::Int(42)).unwrap(), 42);
        assert_eq!(f64::deserialize_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(u8::deserialize_value(&Value::Int(300)).is_err());
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<u32> = None;
        assert_eq!(none.serialize_value(), Value::Null);
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Int(1)).unwrap(),
            Some(1)
        );
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(BTreeMap::new());
        assert!(v["absent"].is_null());
        assert!(Value::Null["x"].is_null());
    }

    #[test]
    fn scalar_equality() {
        assert_eq!(Value::Int(2), 2);
        assert_eq!(Value::Float(1.25), 1.25);
        assert_eq!(Value::Str("v".into()), "v");
    }
}
