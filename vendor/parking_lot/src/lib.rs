//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! The build environment is fully offline, so the real crate cannot be
//! fetched. This shim wraps `std::sync` primitives behind parking_lot's
//! non-poisoning API: `lock()`, `read()`, and `write()` return guards
//! directly instead of `Result`s. Poisoned locks are recovered rather than
//! propagated, matching parking_lot's behavior of not having poisoning at
//! all.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock without lock poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock without lock poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
