#!/usr/bin/env bash
# Offline CI gate: release build, full test suite, and (when installed)
# clippy. No network access is assumed anywhere — every dependency is a
# vendored in-repo shim (see vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --offline"
    cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

echo "==> ci ok"
