#!/usr/bin/env bash
# Staged offline CI gate.
#
# Runs every stage even after a failure and prints a PASS/FAIL/SKIP summary
# table — with per-stage wall-clock times — at the end; exits non-zero if any
# stage failed. No network access is assumed anywhere — every dependency is a
# vendored in-repo shim (see vendor/), so all cargo invocations run with
# --offline.
#
# Usage:
#   scripts/ci.sh                    full gate (fmt, builds, tests, clippy,
#                                    doc, smoke stages)
#   scripts/ci.sh --quick            debug build + tests only
#   scripts/ci.sh --stages a,b,c     run only the named stages; everything
#                                    else is recorded as SKIP. Stage names are
#                                    the ones printed in the summary table.
set -uo pipefail
cd "$(dirname "$0")/.."
ROOT=$(pwd)

ALL_STAGES="fmt build-debug build-release test clippy doc telemetry-smoke \
regression-gate explain-smoke resume-smoke bo-throughput-smoke place-smoke \
family-smoke trend-smoke inspect-smoke bench-smoke"

QUICK=0
STAGES=""
while [[ $# -gt 0 ]]; do
    case "$1" in
        --quick) QUICK=1 ;;
        --stages)
            STAGES="${2:-}"
            shift
            ;;
        --stages=*) STAGES="${1#--stages=}" ;;
        *)
            echo "unknown argument: $1" >&2
            echo "usage: scripts/ci.sh [--quick] [--stages a,b,c]" >&2
            exit 2
            ;;
    esac
    shift
done
if [[ -n "$STAGES" ]]; then
    for s in ${STAGES//,/ }; do
        if [[ " $ALL_STAGES " != *" $s "* ]]; then
            echo "unknown stage '$s'; known stages: ${ALL_STAGES//  / }" >&2
            exit 2
        fi
    done
fi

STAGE_NAMES=()
STAGE_RESULTS=()
STAGE_TIMES=()
FAILED=0

# Is this stage in the --stages selection (or is there no selection)?
want() { # name
    [[ -z "$STAGES" ]] || [[ ",$STAGES," == *",$1,"* ]]
}

record() { # name result time
    STAGE_NAMES+=("$1")
    STAGE_RESULTS+=("$2")
    STAGE_TIMES+=("${3:--}")
    if [[ "$2" == FAIL ]]; then
        FAILED=1
    fi
}

skip() { # name reason
    echo "==> $1: $2; skipping"
    record "$1" SKIP -
}

# Runs one stage under a wall-clock stopwatch. Deselected stages (via
# --stages) are recorded as SKIP without running anything.
run_stage() { # name command...
    local name=$1
    shift
    if ! want "$name"; then
        skip "$name" "not in --stages selection"
        return 0
    fi
    echo "==> ${name}: $*"
    local t0 t1 rc
    t0=$(date +%s%N)
    "$@"
    rc=$?
    t1=$(date +%s%N)
    local secs
    secs=$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.1fs", (b - a) / 1e9 }')
    if [[ $rc -eq 0 ]]; then
        record "$name" PASS "$secs"
    else
        record "$name" FAIL "$secs"
    fi
}

# --- Stage: rustfmt (skipped when the component is not installed) ---------
if [[ $QUICK -eq 0 ]]; then
    if ! want fmt; then
        skip "fmt" "not in --stages selection"
    elif cargo fmt --version >/dev/null 2>&1; then
        run_stage "fmt" cargo fmt --all -- --check
    else
        skip "fmt" "rustfmt not installed"
    fi
fi

# --- Stage: builds --------------------------------------------------------
run_stage "build-debug" cargo build --offline --workspace
if [[ $QUICK -eq 0 ]]; then
    run_stage "build-release" cargo build --offline --release --workspace
fi

# --- Stage: tests ---------------------------------------------------------
run_stage "test" cargo test -q --offline --workspace

if [[ $QUICK -eq 0 ]]; then
    # --- Stage: clippy ----------------------------------------------------
    if ! want clippy; then
        skip "clippy" "not in --stages selection"
    elif cargo clippy --version >/dev/null 2>&1; then
        run_stage "clippy" cargo clippy --offline --workspace --all-targets -- -D warnings
    else
        skip "clippy" "not installed"
    fi

    # --- Stage: docs (warnings are errors) --------------------------------
    doc_gate() {
        RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps --workspace
    }
    run_stage "doc" doc_gate

    # --- Stage: telemetry smoke -------------------------------------------
    # A tiny end-to-end tuning run with --telemetry, then a schema check on
    # the emitted report (required keys + schema version) via the CLI's own
    # telemetry-check subcommand. Entirely offline and fast.
    telemetry_smoke() {
        local out
        out=$(mktemp /tmp/autoblox-ci-telemetry.XXXXXX.json) || return 1
        ./target/release/autoblox tune database \
            --iterations 2 --events 300 --telemetry "$out" \
            >/dev/null || { rm -f "$out"; return 1; }
        ./target/release/autoblox telemetry-check "$out" || { rm -f "$out"; return 1; }
        rm -f "$out"
    }
    if [[ -x ./target/release/autoblox ]]; then
        run_stage "telemetry-smoke" telemetry_smoke
    else
        skip "telemetry-smoke" "release binary missing (build failed?)"
    fi

    # --- Stage: regression gate -------------------------------------------
    # Re-runs the pinned-seed smoke tune and diffs its telemetry report
    # against the checked-in golden (scripts/golden/). `report diff` exits 3
    # when a checked metric (best grade, validation count, cache hit rate,
    # tail latency) regressed beyond its threshold. Time-based metrics are
    # ignored — wall clock is not comparable across machines. The run is
    # forced single-threaded so cache/dedup counters are exactly
    # reproducible.
    GOLDEN=scripts/golden/telemetry-database.json
    regression_gate() {
        local out
        out=$(mktemp /tmp/autoblox-ci-regression.XXXXXX.json) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --telemetry "$out" \
            >/dev/null || { rm -f "$out"; return 1; }
        ./target/release/autoblox report diff "$GOLDEN" "$out" --ignore-time
        local rc=$?
        rm -f "$out"
        return $rc
    }
    if [[ ! -x ./target/release/autoblox ]]; then
        skip "regression-gate" "release binary missing (build failed?)"
    elif [[ ! -f "$GOLDEN" ]]; then
        echo "==> regression-gate: golden report $GOLDEN absent; skipping"
        echo "    (regenerate with: AUTOBLOX_THREADS=1 autoblox tune database" \
             "--iterations 3 --events 300 --telemetry $GOLDEN)"
        record "regression-gate" SKIP -
    else
        run_stage "regression-gate" regression_gate
    fi

    # --- Stage: explain smoke ---------------------------------------------
    # End-to-end check of the device observatory: a telemetry-enabled tune
    # must emit a v3 report (version echoed by telemetry-check's stdout
    # verdict), `explain` must render a bottleneck fingerprint in both human
    # and JSON form, and `explain diff` against the golden must work.
    # Capture CLI stdout before grepping it: `cli | grep -q` races — grep
    # exits at the first match, and the CLI can then die on a broken pipe,
    # which pipefail turns into a stage failure.
    explain_smoke() {
        local out captured
        out=$(mktemp /tmp/autoblox-ci-explain.XXXXXX.json) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 2 --events 300 --telemetry "$out" \
            >/dev/null || { rm -f "$out"; return 1; }
        captured=$(./target/release/autoblox telemetry-check "$out") \
            && grep -q '"autoblox.telemetry.v3"' <<<"$captured" \
            || { echo "telemetry-check did not echo the v3 schema"; rm -f "$out"; return 1; }
        captured=$(./target/release/autoblox explain "$out") \
            && grep -q 'dominant' <<<"$captured" \
            || { echo "explain did not render a fingerprint"; rm -f "$out"; return 1; }
        captured=$(./target/release/autoblox explain --json "$out") \
            && grep -q '"autoblox.explain.v1"' <<<"$captured" \
            || { echo "explain --json did not emit the explain schema"; rm -f "$out"; return 1; }
        if [[ -f "$GOLDEN" ]]; then
            ./target/release/autoblox explain diff "$GOLDEN" "$out" >/dev/null \
                || { echo "explain diff against the golden failed"; rm -f "$out"; return 1; }
        fi
        rm -f "$out"
    }
    if [[ -x ./target/release/autoblox ]]; then
        run_stage "explain-smoke" explain_smoke
    else
        skip "explain-smoke" "release binary missing (build failed?)"
    fi

    # --- Stage: resume smoke ----------------------------------------------
    # Kill-and-resume determinism, end to end through the CLI: a pinned-seed
    # tune is interrupted at iteration 2 via --stop-after-iter, the written
    # checkpoint must pass `checkpoint inspect --json`, and the resumed run
    # must emit a byte-identical tuned configuration plus a telemetry report
    # whose deterministic tuner metrics match the uninterrupted run's.
    # Validator-level statistics (simulator-run counts, cache hit rate, tail
    # latencies, bottleneck fractions) are ignored in the diff: the resumed
    # process only aggregates post-resume simulations, so those counters
    # legitimately differ while best_grade and the per-iteration records
    # must not.
    resume_smoke() {
        local dir cfg_a cfg_b tel_a tel_b inspected rc
        dir=$(mktemp -d /tmp/autoblox-ci-resume.XXXXXX) || return 1
        cfg_a="$dir/config-full.json"
        cfg_b="$dir/config-resumed.json"
        tel_a="$dir/telemetry-full.json"
        tel_b="$dir/telemetry-resumed.json"
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 4 --events 300 --telemetry "$tel_a" \
            >"$cfg_a" || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 4 --events 300 \
            --checkpoint "$dir/ck" --stop-after-iter 2 \
            >/dev/null || { rm -rf "$dir"; return 1; }
        [[ -f "$dir/ck/checkpoint-Database.json" ]] \
            || { echo "interrupted run left no checkpoint"; rm -rf "$dir"; return 1; }
        inspected=$(./target/release/autoblox checkpoint inspect --json \
            "$dir/ck/checkpoint-Database.json") \
            && grep -q '"valid": true' <<<"$inspected" \
            || { echo "checkpoint inspect rejected the snapshot"; rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 4 --events 300 --telemetry "$tel_b" \
            --checkpoint "$dir/ck" --resume \
            >"$cfg_b" || { rm -rf "$dir"; return 1; }
        cmp -s "$cfg_a" "$cfg_b" \
            || { echo "resumed configuration differs from the uninterrupted run"; \
                 rm -rf "$dir"; return 1; }
        ./target/release/autoblox report diff "$tel_a" "$tel_b" --ignore-time \
            --ignore validations --ignore cache_hit_rate \
            --ignore p95_latency_ns --ignore p99_latency_ns \
            --ignore bottleneck_cache_miss_frac --ignore bottleneck_channel_wait_frac \
            --ignore bottleneck_plane_busy_frac --ignore bottleneck_host_queue_frac \
            --ignore bottleneck_gc_stall_frac \
            >/dev/null
        rc=$?
        [[ $rc -eq 0 ]] || echo "resumed telemetry drifted from the uninterrupted run"
        rm -rf "$dir"
        return $rc
    }
    if [[ -x ./target/release/autoblox ]]; then
        run_stage "resume-smoke" resume_smoke
    else
        skip "resume-smoke" "release binary missing (build failed?)"
    fi

    # --- Stage: BO-throughput smoke ---------------------------------------
    # Batched speculative BO must be invisible in every deterministic
    # artifact: a 4-thread `--speculate 4` tune of the pinned-seed smoke
    # problem must emit a byte-identical tuned configuration to the
    # single-threaded sequential run, and its telemetry must diff clean
    # against the same golden the regression gate uses with only wall-clock
    # metrics ignored — cache hit rate, validation counts, latency tails,
    # and bottleneck fractions must all match exactly, because speculative
    # simulator runs are charged to the shared accounting only at the
    # moment the sequential loop would have performed them.
    bo_throughput_smoke() {
        local dir rc
        dir=$(mktemp -d /tmp/autoblox-ci-spec.XXXXXX) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --speculate 1 \
            >"$dir/config-seq.json" || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=4 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --speculate 4 \
            --telemetry "$dir/tel.json" \
            >"$dir/config-spec.json" || { rm -rf "$dir"; return 1; }
        cmp -s "$dir/config-seq.json" "$dir/config-spec.json" \
            || { echo "speculative tuned configuration differs from sequential"; \
                 rm -rf "$dir"; return 1; }
        rc=0
        if [[ -f "$GOLDEN" ]]; then
            ./target/release/autoblox report diff "$GOLDEN" "$dir/tel.json" \
                --ignore-time >/dev/null
            rc=$?
            [[ $rc -eq 0 ]] || echo "speculative telemetry drifted from the golden"
        fi
        rm -rf "$dir"
        return $rc
    }
    if [[ -x ./target/release/autoblox ]]; then
        run_stage "bo-throughput-smoke" bo_throughput_smoke
    else
        skip "bo-throughput-smoke" "release binary missing (build failed?)"
    fi

    # --- Stage: placement smoke -------------------------------------------
    # Fleet placement must be deterministic at any thread count: `place` on a
    # pinned 4-tenant mix over 2 devices must emit byte-identical
    # PlacementReports at 1 and 4 threads (the report deliberately carries no
    # wall-clock or thread-count fields), and the single-threaded run's
    # telemetry must diff clean against the placement golden with only
    # wall-clock metrics ignored — simulator-run counts, cache hit rate,
    # latency tails, and bottleneck fractions are all pinned by the seeds.
    PLACE_GOLDEN=scripts/golden/placement-smoke.json
    PLACE_MIX="Database:1500:11,WebSearch:1500:11,KVStore:1500:11,BatchAnalytics:1500:11"
    place_smoke() {
        local dir rc
        dir=$(mktemp -d /tmp/autoblox-ci-place.XXXXXX) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox place --devices 2 \
            --traces "$PLACE_MIX" --json "$dir/p1.json" --telemetry "$dir/tel.json" \
            >/dev/null || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=4 ./target/release/autoblox place --devices 2 \
            --traces "$PLACE_MIX" --json "$dir/p4.json" \
            >/dev/null || { rm -rf "$dir"; return 1; }
        cmp -s "$dir/p1.json" "$dir/p4.json" \
            || { echo "placement reports differ between 1 and 4 threads"; \
                 rm -rf "$dir"; return 1; }
        ./target/release/autoblox report diff "$PLACE_GOLDEN" "$dir/tel.json" \
            --ignore-time >/dev/null
        rc=$?
        [[ $rc -eq 0 ]] || echo "placement telemetry drifted from the golden"
        rm -rf "$dir"
        return $rc
    }
    if [[ ! -x ./target/release/autoblox ]]; then
        skip "place-smoke" "release binary missing (build failed?)"
    elif [[ ! -f "$PLACE_GOLDEN" ]]; then
        echo "==> place-smoke: golden report $PLACE_GOLDEN absent; skipping"
        echo "    (regenerate with: AUTOBLOX_THREADS=1 autoblox place --devices 2" \
             "--traces $PLACE_MIX --telemetry $PLACE_GOLDEN)"
        record "place-smoke" SKIP -
    else
        run_stage "place-smoke" place_smoke
    fi

    # --- Stage: family smoke ----------------------------------------------
    # The hybrid SLC/QLC device family end to end through the CLI: a pinned
    # short `--family hybrid --flash qlc` tune must emit byte-identical
    # tuned configurations at 1 and 4 threads, its telemetry must diff
    # clean against the family golden with only wall-clock metrics ignored,
    # and resuming a hybrid checkpoint without `--family` must be rejected
    # with the usage exit code (2) — not silently retuned as homogeneous.
    FAMILY_GOLDEN=scripts/golden/family-smoke.json
    family_smoke() {
        local dir rc
        dir=$(mktemp -d /tmp/autoblox-ci-family.XXXXXX) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --flash qlc --family hybrid \
            --telemetry "$dir/tel.json" \
            >"$dir/config-t1.json" || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=4 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --flash qlc --family hybrid \
            >"$dir/config-t4.json" || { rm -rf "$dir"; return 1; }
        cmp -s "$dir/config-t1.json" "$dir/config-t4.json" \
            || { echo "hybrid tuned configuration differs between 1 and 4 threads"; \
                 rm -rf "$dir"; return 1; }
        grep -q '"HybridSlcCache"' "$dir/config-t1.json" \
            || { echo "tuned configuration lost the hybrid device family"; \
                 rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --flash qlc --family hybrid \
            --checkpoint "$dir/ck" --stop-after-iter 1 \
            >/dev/null || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --flash qlc \
            --checkpoint "$dir/ck" --resume \
            >/dev/null 2>"$dir/mismatch.err"
        rc=$?
        [[ $rc -eq 2 ]] \
            || { echo "family-mismatched resume must exit 2, got $rc"; \
                 rm -rf "$dir"; return 1; }
        grep -q -- "--family" "$dir/mismatch.err" \
            || { echo "mismatch error does not name the --family flag:"; \
                 cat "$dir/mismatch.err"; rm -rf "$dir"; return 1; }
        ./target/release/autoblox report diff "$FAMILY_GOLDEN" "$dir/tel.json" \
            --ignore-time >/dev/null
        rc=$?
        [[ $rc -eq 0 ]] || echo "hybrid telemetry drifted from the golden"
        rm -rf "$dir"
        return $rc
    }
    if [[ ! -x ./target/release/autoblox ]]; then
        skip "family-smoke" "release binary missing (build failed?)"
    elif [[ ! -f "$FAMILY_GOLDEN" ]]; then
        echo "==> family-smoke: golden report $FAMILY_GOLDEN absent; skipping"
        echo "    (regenerate with: AUTOBLOX_THREADS=1 autoblox tune database" \
             "--iterations 3 --events 300 --flash qlc --family hybrid" \
             "--telemetry $FAMILY_GOLDEN)"
        record "family-smoke" SKIP -
    else
        run_stage "family-smoke" family_smoke
    fi

    # --- Stage: trend smoke -----------------------------------------------
    # The run observatory end to end: two pinned smoke tunes recorded with
    # --db must land in the registry as run:Database:000001/000002, `report
    # trend` over that stable two-run history must pass (exit 0), and the
    # `watch --replay --json` snapshot of a journaled run must be
    # byte-identical between a 1-thread and a 4-thread run. Speculation is
    # pinned at depth 1 throughout: a thread-derived depth would emit
    # wasted-lookahead spans into the journal and make the line multiset
    # thread-dependent; the snapshot itself already excludes every
    # wall-clock and host field.
    trend_smoke() {
        local dir
        dir=$(mktemp -d /tmp/autoblox-ci-trend.XXXXXX) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 2 --events 300 --speculate 1 --db "$dir/runs.db" \
            >/dev/null || { echo "recorded tune 1 failed"; rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 2 --events 300 --speculate 1 --db "$dir/runs.db" \
            >/dev/null || { echo "recorded tune 2 failed"; rm -rf "$dir"; return 1; }
        ./target/release/autoblox runs list --db "$dir/runs.db" >"$dir/list.txt" \
            || { echo "runs list failed"; rm -rf "$dir"; return 1; }
        { grep -q "run:Database:000001" "$dir/list.txt" && \
          grep -q "run:Database:000002" "$dir/list.txt"; } \
            || { echo "registry keys missing from runs list:"; \
                 cat "$dir/list.txt"; rm -rf "$dir"; return 1; }
        ./target/release/autoblox report trend --db "$dir/runs.db" --json \
            >"$dir/trend.json" \
            || { echo "report trend flagged drift on a stable history:"; \
                 cat "$dir/trend.json"; rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 2 --events 300 --speculate 1 \
            --journal "$dir/j1.jsonl" >/dev/null \
            || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=4 ./target/release/autoblox tune database \
            --iterations 2 --events 300 --speculate 1 \
            --journal "$dir/j4.jsonl" >/dev/null \
            || { rm -rf "$dir"; return 1; }
        ./target/release/autoblox watch "$dir/j1.jsonl" --replay --json \
            >"$dir/w1.json" || { rm -rf "$dir"; return 1; }
        ./target/release/autoblox watch "$dir/j4.jsonl" --replay --json \
            >"$dir/w4.json" || { rm -rf "$dir"; return 1; }
        cmp -s "$dir/w1.json" "$dir/w4.json" \
            || { echo "watch snapshots differ between 1 and 4 threads:"; \
                 diff "$dir/w1.json" "$dir/w4.json" | head -10; \
                 rm -rf "$dir"; return 1; }
        rm -rf "$dir"
        return 0
    }
    if [[ -x ./target/release/autoblox ]]; then
        run_stage "trend-smoke" trend_smoke
    else
        skip "trend-smoke" "release binary missing (build failed?)"
    fi

    # --- Stage: inspect smoke ---------------------------------------------
    # The model observatory end to end from one telemetry report: `inspect`
    # must render all three views (calibration, parameter importance,
    # decision provenance), `inspect --json` must carry the model schema,
    # and `inspect diff` must compare two reports. The pinned 6-iteration
    # smoke run lands at ±1σ coverage 0.80 (deterministic under
    # AUTOBLOX_THREADS=1), so `report trend` must pass at the default
    # calibration floor and exit 3 — the regression exit code — when the
    # floor is raised to 0.9 above the realized coverage. Two runs are
    # recorded so the trend window actually checks the metric (a single
    # run is advisory-only).
    inspect_smoke() {
        local dir captured rc
        dir=$(mktemp -d /tmp/autoblox-ci-inspect.XXXXXX) || return 1
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 3 --events 300 --speculate 1 \
            --telemetry "$dir/base.json" \
            >/dev/null || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 6 --events 300 --speculate 1 \
            --db "$dir/runs.db" --telemetry "$dir/cand.json" \
            >/dev/null || { rm -rf "$dir"; return 1; }
        AUTOBLOX_THREADS=1 ./target/release/autoblox tune database \
            --iterations 6 --events 300 --speculate 1 \
            --db "$dir/runs.db" \
            >/dev/null || { rm -rf "$dir"; return 1; }
        captured=$(./target/release/autoblox inspect "$dir/cand.json") \
            && grep -q 'calibration over' <<<"$captured" \
            && grep -q 'parameter importance' <<<"$captured" \
            && grep -q 'decision timeline' <<<"$captured" \
            || { echo "inspect did not render all three model views"; \
                 rm -rf "$dir"; return 1; }
        captured=$(./target/release/autoblox inspect "$dir/cand.json" --json) \
            && grep -q '"autoblox.model.v1"' <<<"$captured" \
            || { echo "inspect --json did not emit the model schema"; \
                 rm -rf "$dir"; return 1; }
        ./target/release/autoblox inspect diff "$dir/base.json" "$dir/cand.json" \
            >/dev/null \
            || { echo "inspect diff between two reports failed"; \
                 rm -rf "$dir"; return 1; }
        ./target/release/autoblox report trend --db "$dir/runs.db" \
            >/dev/null 2>&1 \
            || { echo "trend flagged drift at the default calibration floor"; \
                 rm -rf "$dir"; return 1; }
        ./target/release/autoblox report trend --db "$dir/runs.db" \
            --min-calibration-coverage 0.9 >/dev/null 2>&1
        rc=$?
        [[ $rc -eq 3 ]] \
            || { echo "raised calibration floor must exit 3, got $rc"; \
                 rm -rf "$dir"; return 1; }
        rm -rf "$dir"
        return 0
    }
    if [[ -x ./target/release/autoblox ]]; then
        run_stage "inspect-smoke" inspect_smoke
    else
        skip "inspect-smoke" "release binary missing (build failed?)"
    fi

    # --- Stage: bench smoke -----------------------------------------------
    # Every benchmark binary must run end to end in `--check` mode (smallest
    # sweep, one repetition) and emit a BENCH_*.json that validates against
    # its own schema — each binary re-reads what it wrote and exits non-zero
    # on a missing or malformed key. Runs from a temp dir so checked-in
    # BENCH_*.json files at the repo root are never clobbered.
    bench_smoke() {
        local dir bin out rc=0
        dir=$(mktemp -d /tmp/autoblox-ci-bench.XXXXXX) || return 1
        for bin in bench_bo_throughput bench_parallel_validation \
                   bench_device_sampling bench_telemetry_overhead \
                   bench_tracing_overhead bench_journal_tail \
                   bench_model_obs bench_hybrid_migration; do
            if [[ ! -x "$ROOT/target/release/$bin" ]]; then
                echo "release binary $bin missing"
                rc=1
                continue
            fi
            if ! (cd "$dir" && "$ROOT/target/release/$bin" --check \
                    >/dev/null 2>"$dir/$bin.err"); then
                echo "$bin --check failed:"
                tail -5 "$dir/$bin.err"
                rc=1
                continue
            fi
            out="$dir/BENCH_${bin#bench_}.json"
            if [[ ! -f "$out" ]]; then
                echo "$bin --check did not write ${out##*/}"
                rc=1
            fi
        done
        rm -rf "$dir"
        return $rc
    }
    run_stage "bench-smoke" bench_smoke
fi

# --- Summary --------------------------------------------------------------
echo
echo "ci summary:"
echo "  -----------------------------------"
for i in "${!STAGE_NAMES[@]}"; do
    printf "  %-20s %-4s %8s\n" \
        "${STAGE_NAMES[$i]}" "${STAGE_RESULTS[$i]}" "${STAGE_TIMES[$i]}"
done
echo "  -----------------------------------"

if [[ $FAILED -ne 0 ]]; then
    echo "ci FAILED"
    exit 1
fi
echo "ci ok"
