//! Umbrella crate for the AutoBlox reproduction.
//!
//! Re-exports the workspace crates so the `examples/` and `tests/` at the
//! repository root can exercise the full public API through one dependency.

pub use autoblox;
pub use autodb;
pub use iotrace;
pub use mlkit;
pub use ssdsim;
